// Cross-model consistency: at vanishing load the paper-literal and
// refined models must agree exactly on the contention-free components
// (both reduce to the same wormhole-drain physics), across a sweep of
// organizations.
#include <gtest/gtest.h>

#include "model/paper_model.hpp"
#include "model/refined_model.hpp"

namespace mcs::model {
namespace {

struct OrgCase {
  const char* name;
  topo::SystemConfig config;
};

class ModelConsistency : public ::testing::TestWithParam<int> {
 public:
  static std::vector<OrgCase> cases() {
    std::vector<OrgCase> out;
    out.push_back({"org_a", topo::SystemConfig::table1_org_a()});
    out.push_back({"org_b", topo::SystemConfig::table1_org_b()});
    out.push_back({"hom_m4_h2", topo::SystemConfig::homogeneous(4, 2, 4)});
    out.push_back({"hom_m8_h3", topo::SystemConfig::homogeneous(8, 3, 4)});
    topo::SystemConfig mixed;
    mixed.m = 6;
    mixed.cluster_heights = {1, 2, 2, 3};
    out.push_back({"mixed_m6", mixed});
    return out;
  }
};

TEST_P(ModelConsistency, ZeroLoadInternalLatencyAgrees) {
  const OrgCase c = cases()[static_cast<std::size_t>(GetParam())];
  const NetworkParams params;
  const PaperModel paper(c.config, params);
  const RefinedModel refined(c.config, params);
  const auto pp = paper.predict(1e-12);
  const auto rp = refined.predict(1e-12);
  ASSERT_EQ(pp.clusters.size(), rp.clusters.size());
  for (std::size_t i = 0; i < pp.clusters.size(); ++i) {
    // Internal journeys: both models use S = M * t(bottleneck) + R with
    // the same hop distribution, so the zero-load limit must match to
    // numerical precision.
    EXPECT_NEAR(pp.clusters[i].t_internal, rp.clusters[i].t_internal,
                1e-6 * pp.clusters[i].t_internal)
        << c.name << " cluster " << i;
  }
}

TEST_P(ModelConsistency, BothModelsSaturateEventually) {
  const OrgCase c = cases()[static_cast<std::size_t>(GetParam())];
  const NetworkParams params;
  const PaperModel paper(c.config, params);
  const RefinedModel refined(c.config, params);
  // At 100x the concentrator bound both variants must be unstable.
  double bound = 0.0;
  for (int i = 0; i < c.config.cluster_count(); ++i)
    bound = std::max(bound, static_cast<double>(c.config.cluster_size(i)) *
                                c.config.p_outgoing(i));
  const double lambda = 100.0 / (bound * params.message_flits *
                                 params.t_cs());
  EXPECT_FALSE(paper.predict(lambda).stable) << c.name;
  EXPECT_FALSE(refined.predict(lambda).stable) << c.name;
}

TEST_P(ModelConsistency, RefinedAlwaysAtLeastPaperAtEqualLoad) {
  // The refined model adds funnel contention the paper averages away; it
  // must never predict *less* latency at the same stable operating point.
  const OrgCase c = cases()[static_cast<std::size_t>(GetParam())];
  const NetworkParams params;
  const PaperModel paper(c.config, params);
  const RefinedModel refined(c.config, params);
  for (double frac = 0.1; frac <= 0.5; frac += 0.2) {
    double bound = 0.0;
    for (int i = 0; i < c.config.cluster_count(); ++i)
      bound = std::max(bound,
                       static_cast<double>(c.config.cluster_size(i)) *
                           c.config.p_outgoing(i));
    const double lambda =
        frac / (bound * params.message_flits * params.t_cs());
    const auto pp = paper.predict(lambda);
    const auto rp = refined.predict(lambda);
    if (pp.stable && rp.stable) {
      EXPECT_GE(rp.mean_latency, pp.mean_latency - 1e-9)
          << c.name << " at fraction " << frac;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Orgs, ModelConsistency, ::testing::Range(0, 5),
                         [](const ::testing::TestParamInfo<int>& suite_info) {
                           return ModelConsistency::cases()
                               [static_cast<std::size_t>(suite_info.param)]
                                   .name;
                         });

}  // namespace
}  // namespace mcs::model
