#include "model/mg1.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mcs::model {
namespace {

TEST(Mg1, ReducesToMm1WithExponentialVariance) {
  // M/M/1: service mean 1/mu, variance 1/mu^2; W = rho/(mu - lambda).
  const double mu = 2.0;
  const double lambda = 1.0;
  const double expected = (lambda / mu) / (mu - lambda);
  EXPECT_NEAR(mg1_wait(lambda, 1.0 / mu, 1.0 / (mu * mu)), expected, 1e-12);
}

TEST(Mg1, Md1IsHalfTheMm1QueueTerm) {
  const double mu = 2.0;
  const double lambda = 1.0;
  const double mm1 = mg1_wait(lambda, 1.0 / mu, 1.0 / (mu * mu));
  EXPECT_NEAR(md1_wait(lambda, 1.0 / mu), 0.5 * mm1, 1e-12);
}

TEST(Mg1, ZeroArrivalRateHasNoWait) {
  EXPECT_DOUBLE_EQ(mg1_wait(0.0, 5.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(md1_wait(0.0, 5.0), 0.0);
}

TEST(Mg1, UnstableQueueIsInfinite) {
  EXPECT_EQ(mg1_wait(1.0, 1.0, 0.0), kInfinity);   // rho == 1
  EXPECT_EQ(mg1_wait(2.0, 1.0, 0.0), kInfinity);   // rho > 1
  EXPECT_EQ(md1_wait(3.0, 0.5), kInfinity);
}

TEST(Mg1, MonotoneInLoadAndVariance) {
  const double w1 = mg1_wait(0.2, 1.0, 0.0);
  const double w2 = mg1_wait(0.5, 1.0, 0.0);
  const double w3 = mg1_wait(0.8, 1.0, 0.0);
  EXPECT_LT(w1, w2);
  EXPECT_LT(w2, w3);
  EXPECT_LT(mg1_wait(0.5, 1.0, 0.0), mg1_wait(0.5, 1.0, 4.0));
}

TEST(Mg1, DraperGhoshVariance) {
  EXPECT_DOUBLE_EQ(draper_ghosh_variance(10.0, 4.0), 36.0);  // Eq. (22)
  EXPECT_DOUBLE_EQ(draper_ghosh_variance(4.0, 4.0), 0.0);
}

TEST(Mg1, UtilizationHelper) {
  EXPECT_DOUBLE_EQ(utilization(0.25, 2.0), 0.5);
}

}  // namespace
}  // namespace mcs::model
