// Unit tests of the obs/ flight-recorder components in isolation:
// ProbeSeries scheduling + adaptive decimation, TraceBuffer capping, the
// CSV/JSON writers (round-tripped through the json_mini test parser), and
// RunManifest provenance capture. The simulator-facing contract (probes
// and traces never perturb results) lives in obs_sim_test.cpp.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "obs/manifest.hpp"
#include "obs/probe.hpp"
#include "obs/trace.hpp"
#include "support/json_mini.hpp"
#include "util/error.hpp"

namespace mcs::obs {
namespace {

using testsupport::parse_json;

TEST(ProbeConfig, ValidateRejectsBadValues) {
  ProbeConfig tiny;
  tiny.max_samples = 1;
  EXPECT_THROW(tiny.validate(), ConfigError);

  ProbeConfig negative;
  negative.interval = -1.0;
  EXPECT_THROW(negative.validate(), ConfigError);

  ProbeConfig auto_mode;  // interval = 0 means auto, which is valid
  EXPECT_NO_THROW(auto_mode.validate());
  EXPECT_THROW(ProbeSeries{tiny}, ConfigError);
}

TEST(ProbeSeries, FixedIntervalSchedule) {
  ProbeConfig cfg;
  cfg.interval = 10.0;
  ProbeSeries series(cfg);

  EXPECT_FALSE(series.due(0.0));
  EXPECT_FALSE(series.due(9.99));
  EXPECT_TRUE(series.due(10.0));   // exactly on the boundary
  EXPECT_FALSE(series.due(10.5));  // one sample per window
  EXPECT_FALSE(series.due(19.0));
  EXPECT_TRUE(series.due(20.0));
}

TEST(ProbeSeries, AutoIntervalLocksToFirstOpportunity) {
  ProbeSeries series;  // interval = 0 -> auto
  EXPECT_DOUBLE_EQ(series.interval(), 0.0);
  EXPECT_FALSE(series.due(0.0));  // time has not advanced yet
  EXPECT_TRUE(series.due(7.5));   // first positive time sets the cadence
  EXPECT_DOUBLE_EQ(series.interval(), 7.5);
  EXPECT_FALSE(series.due(14.9));
  EXPECT_TRUE(series.due(15.0));
}

TEST(ProbeSeries, SkipsAheadWithoutCatchUpBurst) {
  ProbeConfig cfg;
  cfg.interval = 10.0;
  ProbeSeries series(cfg);
  // The event stream jumps 5 intervals at once: exactly one sample is due,
  // and the next boundary is after `now`, not in the past.
  EXPECT_TRUE(series.due(52.0));
  EXPECT_FALSE(series.due(52.0));
  EXPECT_FALSE(series.due(59.9));
  EXPECT_TRUE(series.due(60.0));
}

TEST(ProbeSeries, DecimationHalvesBufferAndDoublesInterval) {
  ProbeConfig cfg;
  cfg.interval = 1.0;
  cfg.max_samples = 8;
  ProbeSeries series(cfg);

  for (int i = 0; i < 20; ++i) {
    ProbeSample s;
    s.time = static_cast<double>(i);
    s.events = static_cast<std::uint64_t>(i);
    series.record(s);
  }
  // 8 fill the buffer; the 9th triggers decimation (keep even indices)
  // and so on. The buffer never exceeds max_samples...
  EXPECT_LE(series.samples().size(), cfg.max_samples);
  EXPECT_GE(series.decimations(), 1);
  EXPECT_DOUBLE_EQ(series.interval(), cfg.interval *
                   std::pow(2.0, series.decimations()));
  // ...the first sample always survives, and time stays monotone.
  ASSERT_FALSE(series.samples().empty());
  EXPECT_DOUBLE_EQ(series.samples().front().time, 0.0);
  for (std::size_t i = 1; i < series.samples().size(); ++i)
    EXPECT_GE(series.samples()[i].time, series.samples()[i - 1].time);
  // The newest sample is retained verbatim (tails matter for saturation).
  EXPECT_DOUBLE_EQ(series.samples().back().time, 19.0);
}

ProbeSeries small_series() {
  ProbeConfig cfg;
  cfg.interval = 1.0;
  ProbeSeries series(cfg);
  for (int i = 0; i < 3; ++i) {
    ProbeSample s;
    s.time = static_cast<double>(i + 1);
    s.events = static_cast<std::uint64_t>(10 * (i + 1));
    s.queue_depth = 5 - i;
    s.live_worms = i;
    s.utilization[0] = 0.25 * i;
    s.per_cluster_delivered = {i, 2 * i};
    series.record(s);
  }
  return series;
}

TEST(ProbeWriters, CsvHasHeaderAndOneRowPerSample) {
  const ProbeSeries series = small_series();
  std::ostringstream out;
  write_probe_csv(out, {{"run, \"a\"", &series}});
  const std::string text = out.str();

  std::istringstream lines(text);
  std::string header;
  ASSERT_TRUE(std::getline(lines, header));
  EXPECT_EQ(header,
            "run,time,events,queue_depth,live_worms,waiting_worms,"
            "pool_rows,generated,delivered_measured,util_icn1,util_ecn1,"
            "util_icn2,delivered_c0,delivered_c1");
  int rows = 0;
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    ++rows;
    // The label contains a comma and quotes, so it must be CSV-escaped.
    EXPECT_EQ(line.rfind("\"run, \"\"a\"\"\",", 0), 0u) << line;
  }
  EXPECT_EQ(rows, 3);
}

TEST(ProbeWriters, JsonRoundTripsThroughParser) {
  const ProbeSeries series = small_series();
  std::ostringstream out;
  write_probe_json(out, {{"row \"zero\"", &series}});

  const testsupport::JsonValue doc = parse_json(out.str());
  const auto& probes = doc.at("probes");
  ASSERT_TRUE(probes.is_array());
  ASSERT_EQ(probes.array.size(), 1u);
  const auto& run = probes.array[0];
  EXPECT_EQ(run.at("run").string, "row \"zero\"");
  EXPECT_DOUBLE_EQ(run.at("interval").number, 1.0);
  const auto& samples = run.at("samples");
  ASSERT_EQ(samples.array.size(), 3u);
  EXPECT_DOUBLE_EQ(samples.array[1].at("time").number, 2.0);
  EXPECT_DOUBLE_EQ(samples.array[1].at("events").number, 20.0);
  EXPECT_DOUBLE_EQ(samples.array[1].at("utilization").array[0].number, 0.25);
  EXPECT_EQ(samples.array[2].at("per_cluster_delivered").array.size(), 2u);
}

TEST(TraceConfig, ValidateRejectsBadValues) {
  TraceConfig bad_sample;
  bad_sample.sample_every = 0;
  EXPECT_THROW(bad_sample.validate(), ConfigError);

  TraceConfig bad_cap;
  bad_cap.max_events = 0;
  EXPECT_THROW(bad_cap.validate(), ConfigError);
  EXPECT_THROW(TraceBuffer{bad_cap}, ConfigError);
}

TEST(TraceBuffer, CapsAndCountsDrops) {
  TraceConfig cfg;
  cfg.max_events = 4;
  TraceBuffer buffer(cfg, /*pid=*/3);
  for (int i = 0; i < 10; ++i)
    buffer.complete("span", i, static_cast<double>(i), 1.0);
  EXPECT_EQ(buffer.events().size(), 4u);
  EXPECT_EQ(buffer.dropped(), 6u);
  EXPECT_EQ(buffer.pid(), 3);
}

TEST(TraceWriters, JsonRoundTripsWithMetadataAndArgs) {
  TraceBuffer buffer(TraceConfig{}, /*pid=*/7);
  buffer.set_label("row \"a\"/tree");
  buffer.complete("msg", 0, 1.5, 4.0, "\"hops\":3,\"internal\":true");
  buffer.complete("hop", 0, 1.5, 2.0);

  std::ostringstream out;
  write_trace_json(out, {&buffer, nullptr});
  const testsupport::JsonValue doc = parse_json(out.str());
  const auto& events = doc.at("traceEvents");
  ASSERT_EQ(events.array.size(), 3u);  // process_name + 2 spans

  const auto& meta = events.array[0];
  EXPECT_EQ(meta.at("name").string, "process_name");
  EXPECT_EQ(meta.at("ph").string, "M");
  EXPECT_DOUBLE_EQ(meta.at("pid").number, 7.0);
  EXPECT_EQ(meta.at("args").at("name").string, "row \"a\"/tree");

  const auto& msg = events.array[1];
  EXPECT_EQ(msg.at("name").string, "msg");
  EXPECT_EQ(msg.at("ph").string, "X");
  EXPECT_DOUBLE_EQ(msg.at("ts").number, 1.5);
  EXPECT_DOUBLE_EQ(msg.at("dur").number, 4.0);
  EXPECT_DOUBLE_EQ(msg.at("args").at("hops").number, 3.0);
  EXPECT_TRUE(msg.at("args").at("internal").boolean);
  EXPECT_FALSE(events.array[2].has("args"));
}

TEST(RunManifest, CapturesProvenanceAndResources) {
  RunManifest manifest = RunManifest::begin();
  EXPECT_FALSE(manifest.git.empty());
  EXPECT_FALSE(manifest.compiler.empty());
  EXPECT_FALSE(manifest.hostname.empty());

  volatile double sink = 0.0;  // burn a little CPU so cpu_seconds > 0
  for (int i = 0; i < 1'000'000; ++i) sink = sink + 1.0 / (i + 1);
  manifest.complete();
  EXPECT_GE(manifest.wall_seconds, 0.0);
  EXPECT_GE(manifest.cpu_seconds, 0.0);

  std::ostringstream compact;
  manifest.write_json(compact);
  const testsupport::JsonValue doc = parse_json(compact.str());
  EXPECT_EQ(doc.at("git").string, manifest.git);
  EXPECT_EQ(doc.at("hostname").string, manifest.hostname);
  EXPECT_GE(doc.at("wall_seconds").number, 0.0);
  // The perf baseline reader line-greps for "id": and "events_per_sec":;
  // the manifest must never emit those substrings or old baselines break.
  EXPECT_EQ(compact.str().find("\"id\":"), std::string::npos);
  EXPECT_EQ(compact.str().find("\"events_per_sec\":"), std::string::npos);

  std::ostringstream indented;
  manifest.write_json(indented, 4);
  EXPECT_NO_THROW(parse_json(indented.str()));
  EXPECT_NE(indented.str().find("\n    \""), std::string::npos);
}

}  // namespace
}  // namespace mcs::obs
