// Latency anatomy vs model attribution (DESIGN.md §13).
//
// Three layers under test:
//  1. RefinedModel::breakdown() is EXACTLY consistent with predict(): the
//     per-station M/G/1 terms it reports are the same numbers predict()
//     folds into the cluster latencies (no second implementation allowed
//     to drift).
//  2. At low load the measured per-stage anatomy of a simulation matches
//     the breakdown's station terms (the per-stage analogue of the paper's
//     end-to-end validation): residence within 25% per station, wait gap
//     within 25% of the station residence.
//  3. exp::build_explain joins the two views, degrades to one-sided
//     reports, and serializes stable JSON.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "exp/explain.hpp"
#include "exp/scenario.hpp"
#include "model/refined_model.hpp"
#include "sim/simulator.hpp"

namespace mcs {
namespace {

topo::SystemConfig homogeneous_system() {
  return topo::SystemConfig::homogeneous(/*m=*/4, /*height=*/2,
                                         /*clusters=*/4);
}

topo::SystemConfig hetero_system() {
  topo::SystemConfig cfg;
  cfg.m = 4;
  cfg.cluster_heights = {2, 2, 3};
  return cfg;
}

TEST(ModelBreakdown, StationTermsExactlyMatchPredict) {
  for (const topo::SystemConfig& system :
       {homogeneous_system(), hetero_system()}) {
    const model::RefinedModel refined(system, model::NetworkParams{});
    for (double lambda : {1e-5, 5e-5, 2e-4}) {
      const model::LatencyPrediction p = refined.predict(lambda);
      const model::ModelBreakdown b = refined.breakdown(lambda);
      ASSERT_EQ(p.clusters.size(), b.clusters.size());
      EXPECT_EQ(b.stable, p.stable);
      for (std::size_t i = 0; i < p.clusters.size(); ++i) {
        const model::ClusterLatency& cl = p.clusters[i];
        const model::ClusterBreakdown& cb = b.clusters[i];
        EXPECT_EQ(cb.p_outgoing, cl.p_outgoing);
        // Source-side waits are the exact same M/G/1 evaluations.
        EXPECT_EQ(cb.stations[0].wait, cl.w_source_internal);
        EXPECT_EQ(cb.stations[1].wait, cl.w_source_external);
      }
    }
  }
}

TEST(ModelBreakdown, ConcPlusDispatcherReassembleWConcDisp) {
  // Homogeneous system: every destination cluster is identical, so
  // predict()'s v-averaged dispatcher wait equals any single cluster's
  // dispatcher term and w_conc_disp must reassemble exactly.
  const model::RefinedModel refined(homogeneous_system(),
                                    model::NetworkParams{});
  for (double lambda : {1e-5, 5e-5, 2e-4}) {
    const model::LatencyPrediction p = refined.predict(lambda);
    const model::ModelBreakdown b = refined.breakdown(lambda);
    for (std::size_t i = 0; i < p.clusters.size(); ++i) {
      const std::size_t v = i == 0 ? 1 : 0;  // any destination != i
      EXPECT_DOUBLE_EQ(
          b.clusters[i].stations[2].wait + b.clusters[v].stations[3].wait,
          p.clusters[i].w_conc_disp);
    }
  }
}

TEST(ModelBreakdown, SystemAggregatesAndBottleneck) {
  const model::RefinedModel refined(hetero_system(), model::NetworkParams{});
  const model::ModelBreakdown b = refined.breakdown(5e-5);
  ASSERT_TRUE(b.stable);
  for (int k = 0; k < model::kBreakdownStations; ++k) {
    ASSERT_TRUE(b.system[k].present) << model::breakdown_station_name(k);
    EXPECT_TRUE(b.system[k].stable);
    EXPECT_GT(b.system[k].lambda, 0.0);
    EXPECT_GT(b.system[k].s_mean, 0.0);
    EXPECT_GE(b.system[k].wait, 0.0);
    EXPECT_GT(b.system[k].rho, 0.0);
    EXPECT_LT(b.system[k].rho, 1.0);
  }
  const int bottleneck = b.bottleneck_station();
  ASSERT_GE(bottleneck, 0);
  for (int k = 0; k < model::kBreakdownStations; ++k)
    EXPECT_GE(b.system[bottleneck].rho, b.system[k].rho);

  // Station names line up with the obs convention so the joined report
  // never mislabels a row.
  for (int k = 0; k < model::kBreakdownStations; ++k)
    EXPECT_STREQ(model::breakdown_station_name(k), obs::station_name(k));
}

TEST(ModelBreakdown, UnstableLoadIsFlaggedPerStation) {
  // Far past saturation: the breakdown must mark the overloaded stations
  // unstable (mirroring predict()'s stable=false) instead of reporting
  // finite waits.
  const model::RefinedModel refined(hetero_system(), model::NetworkParams{});
  const double lambda = 5e-2;
  const model::LatencyPrediction p = refined.predict(lambda);
  const model::ModelBreakdown b = refined.breakdown(lambda);
  EXPECT_FALSE(p.stable);
  EXPECT_FALSE(b.stable);
  bool any_unstable = false;
  for (int k = 0; k < model::kBreakdownStations; ++k)
    any_unstable = any_unstable || !b.system[k].stable;
  EXPECT_TRUE(any_unstable);
}

/// Run one low-load simulation with an anatomy attached and return it
/// together with the matching breakdown.
struct JoinedPoint {
  obs::LatencyAnatomy anatomy;
  model::ModelBreakdown breakdown;
};

JoinedPoint measure_point(const topo::SystemConfig& system, double lambda,
                          sim::FlowControl flow) {
  JoinedPoint point;
  sim::SimConfig cfg;
  cfg.seed = 20060814;
  cfg.warmup_messages = 2'000;
  cfg.measured_messages = 20'000;
  cfg.flow_control = flow;
  cfg.anatomy = &point.anatomy;
  topo::MultiClusterTopology topology(system);
  sim::Simulator sim(topology, model::NetworkParams{}, lambda, cfg);
  const sim::SimResult result = sim.run();
  EXPECT_FALSE(result.saturated);
  const model::RefinedModel refined(system, model::NetworkParams{}, {},
                                    flow);
  point.breakdown = refined.breakdown(lambda);
  return point;
}

TEST(AnatomyVsModel, LowLoadPerStageAgreementWithin25Percent) {
  for (const sim::FlowControl flow :
       {sim::FlowControl::kWormhole, sim::FlowControl::kStoreAndForward}) {
    const JoinedPoint point =
        measure_point(hetero_system(), /*lambda=*/5e-5, flow);
    ASSERT_TRUE(point.breakdown.stable);
    for (int k = 0; k < obs::kStations; ++k) {
      const obs::StationMeasure st = point.anatomy.station(k);
      const model::StationTerm& term = point.breakdown.system[k];
      ASSERT_TRUE(term.present) << obs::station_name(k);
      const double model_residence = term.residence();
      ASSERT_GT(model_residence, 0.0);
      const double measured_residence = st.mean_wait + st.mean_service;
      EXPECT_NEAR(measured_residence, model_residence,
                  0.25 * model_residence)
          << obs::station_name(k) << " flow " << static_cast<int>(flow);
      EXPECT_LE(std::abs(st.mean_wait - term.wait), 0.25 * model_residence)
          << obs::station_name(k) << " flow " << static_cast<int>(flow);
    }
  }
}

TEST(Explain, JoinedReportFlagsDivergenceAndBottleneck) {
  const JoinedPoint point = measure_point(hetero_system(), 5e-5,
                                          sim::FlowControl::kWormhole);
  const exp::ExplainReport report = exp::build_explain(
      "test_point", 5e-5, &point.anatomy, &point.breakdown);
  EXPECT_TRUE(report.has_measured);
  EXPECT_TRUE(report.has_model);
  EXPECT_EQ(report.messages, point.anatomy.messages());
  ASSERT_GE(report.bottleneck_station, 0);
  ASSERT_GE(report.worst_station, 0);
  for (int k = 0; k < obs::kStations; ++k) {
    const exp::ExplainStation& st = report.stations[k];
    EXPECT_EQ(st.station, k);
    EXPECT_TRUE(st.has_measured);
    EXPECT_TRUE(st.has_model);
    ASSERT_TRUE(st.joined);
    EXPECT_LE(st.residence_divergence, 0.25);
    EXPECT_GE(report.stations[report.worst_station].residence_divergence,
              st.residence_divergence);
  }
  // bottleneck = argmax measured rho-hat.
  for (int k = 0; k < obs::kStations; ++k)
    EXPECT_GE(report.stations[report.bottleneck_station].measured_rho,
              report.stations[k].measured_rho);
  EXPECT_FALSE(report.hot_channels.empty());
}

TEST(Explain, ModelOnlyReportNamesModelBottleneck) {
  const model::RefinedModel refined(hetero_system(), model::NetworkParams{});
  const model::ModelBreakdown b = refined.breakdown(5e-5);
  const exp::ExplainReport report =
      exp::build_explain("model_only", 5e-5, nullptr, &b);
  EXPECT_FALSE(report.has_measured);
  EXPECT_TRUE(report.has_model);
  EXPECT_EQ(report.worst_station, -1);
  EXPECT_EQ(report.bottleneck_station, b.bottleneck_station());
  for (int k = 0; k < obs::kStations; ++k) {
    EXPECT_FALSE(report.stations[k].has_measured);
    EXPECT_FALSE(report.stations[k].joined);
  }
}

TEST(Explain, SimOnlyReportRanksMeasuredStations) {
  const JoinedPoint point = measure_point(hetero_system(), 5e-5,
                                          sim::FlowControl::kWormhole);
  const exp::ExplainReport report =
      exp::build_explain("sim_only", 5e-5, &point.anatomy, nullptr);
  EXPECT_TRUE(report.has_measured);
  EXPECT_FALSE(report.has_model);
  EXPECT_EQ(report.worst_station, -1);
  ASSERT_GE(report.bottleneck_station, 0);
  EXPECT_GT(report.messages, 0u);
}

TEST(Explain, EmptyReportIsInert) {
  const exp::ExplainReport report =
      exp::build_explain("empty", 1e-4, nullptr, nullptr);
  EXPECT_FALSE(report.has_measured);
  EXPECT_FALSE(report.has_model);
  EXPECT_EQ(report.bottleneck_station, -1);
  EXPECT_EQ(report.worst_station, -1);
}

TEST(Explain, JsonCarriesRequiredKeysInBothModes) {
  const JoinedPoint point = measure_point(hetero_system(), 5e-5,
                                          sim::FlowControl::kWormhole);
  const exp::ExplainReport joined = exp::build_explain(
      "json_point", 5e-5, &point.anatomy, &point.breakdown);
  std::ostringstream out;
  exp::write_explain_json(joined, out);
  const std::string json = out.str();
  for (const char* key :
       {"\"lambda\"", "\"has_measured\"", "\"has_model\"",
        "\"bottleneck_station\"", "\"worst_station\"", "\"stations\"",
        "\"measured_wait\"", "\"model_wait\"", "\"residence_divergence\"",
        "\"hot_channels\"", "\"conservation\"", "\"messages\""})
    EXPECT_NE(json.find(key), std::string::npos) << key;
  // The bottleneck is emitted by station NAME (CI greps for it).
  EXPECT_NE(json.find(obs::station_name(joined.bottleneck_station)),
            std::string::npos);

  const exp::ExplainReport model_only =
      exp::build_explain("model_only", 5e-5, nullptr, &point.breakdown);
  std::ostringstream out2;
  exp::write_explain_json(model_only, out2);
  const std::string json2 = out2.str();
  EXPECT_NE(json2.find("\"bottleneck_station\""), std::string::npos);
  EXPECT_NE(json2.find("\"has_measured\":false"), std::string::npos);
  EXPECT_EQ(json2.find("\"measured_wait\""), std::string::npos);
}

TEST(Explain, RenderNamesEveryStation) {
  const JoinedPoint point = measure_point(hetero_system(), 5e-5,
                                          sim::FlowControl::kWormhole);
  const exp::ExplainReport report = exp::build_explain(
      "render_point", 5e-5, &point.anatomy, &point.breakdown);
  const std::string text = exp::render_explain(report);
  for (int k = 0; k < obs::kStations; ++k)
    EXPECT_NE(text.find(obs::station_name(k)), std::string::npos)
        << obs::station_name(k);
  EXPECT_NE(text.find("bottleneck station"), std::string::npos);
  EXPECT_NE(text.find("conservation"), std::string::npos);
}

TEST(Scenario, ObserveExplainKeyParses) {
  const exp::ScenarioSpec spec = exp::parse_scenario_string(
      "[sweep]\n"
      "name = explain_spec\n"
      "loads = 1e-5\n"
      "[observe]\n"
      "explain = true\n"
      "[system a]\n"
      "preset = homogeneous\n"
      "m = 4\n"
      "height = 2\n"
      "clusters = 2\n");
  EXPECT_TRUE(spec.explain);
  const exp::ScenarioSpec off = exp::parse_scenario_string(
      "[sweep]\n"
      "name = explain_off\n"
      "loads = 1e-5\n"
      "[system a]\n"
      "preset = homogeneous\n"
      "m = 4\n"
      "height = 2\n"
      "clusters = 2\n");
  EXPECT_FALSE(off.explain);
}

}  // namespace
}  // namespace mcs
