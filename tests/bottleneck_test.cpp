// Tests of the closed-form bottleneck analyzer and the ICN2 funnel
// coefficients, including a cross-validation against simulated channel
// utilization.
#include "model/bottleneck.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "model/icn2_funnel.hpp"
#include "sim/simulator.hpp"

namespace mcs::model {
namespace {

class BottleneckTest : public ::testing::Test {
 protected:
  topo::SystemConfig org_a_ = topo::SystemConfig::table1_org_a();
  NetworkParams params_;
};

TEST_F(BottleneckTest, RatesScaleLinearlyWithLoad) {
  const auto at1 = analyze_bottlenecks(org_a_, params_, 1e-4);
  const auto at2 = analyze_bottlenecks(org_a_, params_, 2e-4);
  ASSERT_EQ(at1.size(), at2.size());
  for (std::size_t c = 0; c < at1.size(); ++c) {
    EXPECT_NEAR(at2[c].total_rate, 2.0 * at1[c].total_rate,
                1e-9 * at2[c].total_rate + 1e-15);
    EXPECT_NEAR(at2[c].worst_utilization, 2.0 * at1[c].worst_utilization,
                1e-9);
  }
}

TEST_F(BottleneckTest, SortedByWorstUtilization) {
  const auto loads = analyze_bottlenecks(org_a_, params_, 1e-4);
  for (std::size_t c = 1; c < loads.size(); ++c)
    EXPECT_GE(loads[c - 1].worst_utilization, loads[c].worst_utilization);
}

TEST_F(BottleneckTest, Icn2DownFunnelIsTheOrgABottleneck) {
  // Org A's four 128-node clusters share one ICN2 leaf group; the down
  // channel toward that group is the hottest channel in the system.
  const auto loads = analyze_bottlenecks(org_a_, params_, 1e-4);
  ASSERT_FALSE(loads.empty());
  EXPECT_EQ(loads.front().net, NetworkLayer::kIcn2);
  EXPECT_EQ(loads.front().kind, topo::ChannelKind::kDown);
  EXPECT_NE(loads.front().hottest.find("128-node"), std::string::npos);
}

TEST_F(BottleneckTest, LoadAtUnitUtilizationMatchesObservedSimKnee) {
  // The flow bound for Org A (M=32, L_m=256) sits near 2.1e-4 — the knee
  // the simulator exhibits (DESIGN.md §6 discussion, EXPERIMENTS.md).
  const double bound = load_at_worst_utilization(org_a_, params_, 1.0);
  EXPECT_GT(bound, 1.6e-4);
  EXPECT_LT(bound, 2.6e-4);
}

TEST_F(BottleneckTest, BoundScalesInverselyWithMessageLength) {
  NetworkParams m64 = params_;
  m64.message_flits = 64;
  EXPECT_NEAR(load_at_worst_utilization(org_a_, m64, 1.0),
              0.5 * load_at_worst_utilization(org_a_, params_, 1.0),
              1e-7);
}

TEST_F(BottleneckTest, MeanUtilizationNeverExceedsWorst) {
  for (const auto& load : analyze_bottlenecks(org_a_, params_, 1.5e-4)) {
    EXPECT_LE(load.mean_utilization, load.worst_utilization + 1e-12)
        << to_string(load.net) << " level " << load.level;
  }
}

TEST(Icn2FunnelTest, OutCoefficientsMatchEq13) {
  const auto cfg = topo::SystemConfig::table1_org_b();
  const Icn2Funnel funnel = Icn2Funnel::compute(cfg);
  ASSERT_EQ(funnel.out_coeff.size(),
            static_cast<std::size_t>(cfg.cluster_count()));
  for (int i = 0; i < cfg.cluster_count(); ++i)
    EXPECT_NEAR(funnel.out_coeff[static_cast<std::size_t>(i)],
                static_cast<double>(cfg.cluster_size(i)) *
                    cfg.p_outgoing(i),
                1e-9);
}

TEST(Icn2FunnelTest, DownCoefficientConservesGroupInflow) {
  // Summing boundary-1 down coefficients over one representative of each
  // leaf group must not exceed the total external traffic (every message
  // crosses at most one boundary-1 down channel).
  const auto cfg = topo::SystemConfig::table1_org_a();
  const Icn2Funnel funnel = Icn2Funnel::compute(cfg);
  double total_external = 0.0;
  for (const double c : funnel.out_coeff) total_external += c;
  double group_sum = 0.0;
  const int k = cfg.m / 2;
  for (int v = 0; v < cfg.cluster_count(); v += k)
    group_sum += funnel.down_coeff[static_cast<std::size_t>(v)][1];
  EXPECT_LE(group_sum, total_external + 1e-9);
  EXPECT_GT(group_sum, 0.5 * total_external);  // most traffic crosses
}

TEST(Icn2FunnelTest, HomogeneousGroupsAreSymmetric) {
  const auto cfg = topo::SystemConfig::homogeneous(4, 2, 8);
  const Icn2Funnel funnel = Icn2Funnel::compute(cfg);
  for (int v = 1; v < cfg.cluster_count(); ++v) {
    for (int l = 1; l < funnel.height; ++l)
      EXPECT_NEAR(funnel.down_coeff[static_cast<std::size_t>(v)]
                                   [static_cast<std::size_t>(l)],
                  funnel.down_coeff[0][static_cast<std::size_t>(l)], 1e-9);
  }
}

TEST(BottleneckVsSim, WorstUtilizationMatchesMeasurement) {
  // Integration: the analyzer's hottest-class utilization should land in
  // the same range the simulator measures (within the flow model's
  // no-queueing approximation).
  topo::SystemConfig cfg;
  cfg.m = 4;
  cfg.cluster_heights = {2, 2, 3, 3};
  const NetworkParams params;
  const double lambda =
      0.4 * load_at_worst_utilization(cfg, params, 1.0);

  const auto loads = analyze_bottlenecks(cfg, params, lambda);
  const double predicted_worst = loads.front().worst_utilization;

  sim::SimConfig sim_cfg;
  sim_cfg.warmup_messages = 2'000;
  sim_cfg.measured_messages = 20'000;
  sim_cfg.collect_channel_stats = true;
  const topo::MultiClusterTopology topology(cfg);
  sim::Simulator simulator(topology, params, lambda, sim_cfg);
  const auto result = simulator.run();
  ASSERT_FALSE(result.saturated);

  double measured_worst = 0.0;
  for (const auto& c : result.channel_classes)
    measured_worst = std::max(measured_worst, c.max_utilization);

  EXPECT_NEAR(predicted_worst, measured_worst, 0.5 * measured_worst);
}

}  // namespace
}  // namespace mcs::model
