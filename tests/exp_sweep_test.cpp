#include "exp/sweep.hpp"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <thread>

#include "exp/scenario.hpp"
#include "exp/sweep_io.hpp"
#include "util/error.hpp"

namespace mcs::exp {
namespace {

ScenarioSpec tiny_spec() {
  ScenarioSpec spec;
  spec.name = "tiny";
  spec.systems.push_back({"h1x2", topo::SystemConfig::homogeneous(4, 1, 2)});
  spec.message_flits = {32};
  spec.flit_bytes = {256};
  PatternEntry tornado{"tornado", {}};
  tornado.pattern.kind = sim::PatternKind::kClusterPermutation;
  spec.patterns.push_back({"uniform", sim::TrafficPattern{}});
  spec.patterns.push_back(tornado);
  spec.loads = {5e-4, 1e-3};
  spec.replications = 2;
  spec.warmup = 200;
  spec.measured = 2'000;
  spec.find_knee = true;
  return spec;
}

// Field-by-field bitwise comparison: the thread-count invariance contract
// is "identical", not "close".
void expect_rows_identical(const SweepResult& a, const SweepResult& b) {
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    const SweepRow& x = a.rows[i];
    const SweepRow& y = b.rows[i];
    EXPECT_EQ(x.system_id, y.system_id) << "row " << i;
    EXPECT_EQ(x.pattern_id, y.pattern_id) << "row " << i;
    EXPECT_EQ(x.message_flits, y.message_flits) << "row " << i;
    EXPECT_EQ(x.flit_bytes, y.flit_bytes) << "row " << i;
    EXPECT_EQ(x.lambda, y.lambda) << "row " << i;
    EXPECT_EQ(x.paper_run, y.paper_run) << "row " << i;
    EXPECT_EQ(x.paper_latency, y.paper_latency) << "row " << i;
    EXPECT_EQ(x.paper_stable, y.paper_stable) << "row " << i;
    EXPECT_EQ(x.refined_run, y.refined_run) << "row " << i;
    EXPECT_EQ(x.refined_latency, y.refined_latency) << "row " << i;
    EXPECT_EQ(x.refined_stable, y.refined_stable) << "row " << i;
    EXPECT_EQ(x.knee_lambda, y.knee_lambda) << "row " << i;
    EXPECT_EQ(x.sim_lambda_sat, y.sim_lambda_sat) << "row " << i;
    EXPECT_EQ(x.sat_ratio, y.sat_ratio) << "row " << i;
    EXPECT_EQ(x.sim_run, y.sim_run) << "row " << i;
    EXPECT_EQ(x.replications, y.replications) << "row " << i;
    EXPECT_EQ(x.completed, y.completed) << "row " << i;
    EXPECT_EQ(x.saturated, y.saturated) << "row " << i;
    EXPECT_EQ(x.sim_latency, y.sim_latency) << "row " << i;
    EXPECT_EQ(x.sim_ci, y.sim_ci) << "row " << i;
    EXPECT_EQ(x.sim_internal, y.sim_internal) << "row " << i;
    EXPECT_EQ(x.sim_external, y.sim_external) << "row " << i;
    EXPECT_EQ(x.external_share, y.external_share) << "row " << i;
    EXPECT_EQ(x.sim_state, y.sim_state) << "row " << i;
  }
}

TEST(DeriveSeed, DeterministicAndCoordinateSensitive) {
  EXPECT_EQ(derive_seed(7, {1, 2, 3}), derive_seed(7, {1, 2, 3}));
  EXPECT_NE(derive_seed(7, {1, 2, 3}), derive_seed(8, {1, 2, 3}));
  EXPECT_NE(derive_seed(7, {1, 2, 3}), derive_seed(7, {1, 2, 4}));
  EXPECT_NE(derive_seed(7, {1, 2}), derive_seed(7, {2, 1}));
  EXPECT_NE(derive_seed(7, {0}), derive_seed(7, {}));

  // Adjacent coordinates must produce well-spread seeds (they feed
  // independent replications of the same operating point).
  std::set<std::uint64_t> seeds;
  for (std::uint64_t rep = 0; rep < 1000; ++rep)
    seeds.insert(derive_seed(7, {0, 0, 0, rep}));
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(SweepRunner, ResultIsIdenticalForOneAndManyThreads) {
  const SweepRunner runner(tiny_spec());
  SweepRunOptions one;
  one.threads = 1;
  SweepRunOptions many;
  many.threads = 8;
  const SweepResult a = runner.run(one);
  const SweepResult b = runner.run(many);
  EXPECT_EQ(a.threads, 1);
  EXPECT_EQ(b.threads, 8);
  expect_rows_identical(a, b);

  // And a re-run with the same thread count reproduces itself.
  const SweepResult c = runner.run(many);
  expect_rows_identical(b, c);
}

TEST(SweepRunner, GridExpansionMatchesSpec) {
  const ScenarioSpec spec = tiny_spec();
  const SweepRunner runner(spec);
  const SweepResult result = runner.run();
  ASSERT_EQ(result.rows.size(), static_cast<std::size_t>(spec.grid_size()));
  EXPECT_EQ(result.sim_tasks,
            spec.grid_size() * static_cast<std::int64_t>(spec.replications));

  // Row order is the spec's nesting order: pattern-major over loads here.
  EXPECT_EQ(result.rows[0].pattern_id, "uniform");
  EXPECT_EQ(result.rows[0].lambda, 5e-4);
  EXPECT_EQ(result.rows[1].pattern_id, "uniform");
  EXPECT_EQ(result.rows[1].lambda, 1e-3);
  EXPECT_EQ(result.rows[2].pattern_id, "tornado");

  for (const SweepRow& row : result.rows) {
    EXPECT_TRUE(row.paper_run);
    EXPECT_TRUE(row.refined_run);
    EXPECT_GT(row.knee_lambda, 0.0);
    EXPECT_TRUE(row.sim_run);
    EXPECT_EQ(row.completed + row.saturated, 2);
    if (row.completed > 0) {
      EXPECT_GT(row.sim_latency, 0.0);
      EXPECT_GE(row.external_share, 0.0);
    }
  }
  // The tornado pattern sends everything across the ICN2.
  EXPECT_EQ(result.rows[2].external_share, 1.0);
}

TEST(SweepRunner, SharedExternalPoolWorks) {
  ThreadPool pool(2);
  const SweepRunner runner(tiny_spec());
  SweepRunOptions options;
  options.pool = &pool;
  const SweepResult result = runner.run(options);
  EXPECT_EQ(result.threads, 2);
  SweepRunOptions one;
  one.threads = 1;
  expect_rows_identical(result, runner.run(one));
}

TEST(SweepRunner, RejectsInvalidSpecs) {
  ScenarioSpec spec = tiny_spec();
  spec.loads.clear();
  EXPECT_THROW(SweepRunner{spec}, ConfigError);

  // Pattern/topology mismatch caught at construction, not in a worker.
  ScenarioSpec bad_pattern = tiny_spec();
  bad_pattern.patterns[0].pattern.kind = sim::PatternKind::kHotspot;
  bad_pattern.patterns[0].pattern.hotspot_node = 10'000;  // out of range
  EXPECT_THROW(SweepRunner{bad_pattern}, ConfigError);
}

TEST(SweepRunner, FindSaturationFillsEveryRowThreadInvariantly) {
  ScenarioSpec spec = tiny_spec();
  spec.run_sim = false;  // the search runs its own probes regardless
  spec.find_knee = false;
  spec.find_sim_saturation = true;
  spec.search.seq.r_min = 2;
  spec.search.seq.r_max = 4;
  spec.search.seq.rel_precision = 0.25;
  spec.search.rel_tol = 0.1;
  const SweepRunner runner(spec);
  // find_sim_saturation implies find_knee (the ratio's denominator).
  EXPECT_TRUE(runner.spec().find_knee);

  SweepRunOptions one;
  one.threads = 1;
  SweepRunOptions many;
  many.threads = 6;
  const SweepResult a = runner.run(one);
  const SweepResult b = runner.run(many);
  expect_rows_identical(a, b);

  for (const SweepRow& row : a.rows) {
    EXPECT_GT(row.sim_lambda_sat, 0.0);
    EXPECT_GT(row.knee_lambda, 0.0);
    EXPECT_GT(row.sat_ratio, 0.0);
    EXPECT_FALSE(row.sim_run);
  }
  // Rows of the same (system, params, pattern, relay, flow) group share
  // one search; the two loads per group must agree exactly.
  EXPECT_EQ(a.rows[0].sim_lambda_sat, a.rows[1].sim_lambda_sat);
  // Different patterns are different searches (different destinations).
  EXPECT_NE(a.rows[0].sim_lambda_sat, a.rows[2].sim_lambda_sat);

  // The emitted table/CSV/JSON carry the new columns.
  std::ostringstream json;
  write_json(a, json);
  EXPECT_NE(json.str().find("\"sim_lambda_sat\""), std::string::npos);
  EXPECT_NE(json.str().find("\"sat_ratio\""), std::string::npos);
  const std::string table = to_table(a).render();
  EXPECT_NE(table.find("sim lambda*"), std::string::npos);
  EXPECT_NE(table.find("sim/model"), std::string::npos);
}

TEST(SweepRunner, JsonStaysParseableWhenModelsSaturate) {
  ScenarioSpec spec = tiny_spec();
  spec.run_sim = false;
  spec.loads = {1.0};  // far past saturation: predictions are infinite
  const SweepResult result = SweepRunner(spec).run();
  ASSERT_FALSE(result.rows[0].paper_stable);
  std::ostringstream out;
  write_json(result, out);
  const std::string json = out.str();
  // JSON has no inf/nan literals; unstable latencies must emit null.
  EXPECT_EQ(json.find(":inf"), std::string::npos);
  EXPECT_EQ(json.find(":nan"), std::string::npos);
  EXPECT_NE(json.find(":null"), std::string::npos);
}

TEST(SweepRunner, ExplainCollectsAnatomyAndBreakdownPerRow) {
  ScenarioSpec spec = tiny_spec();
  spec.replications = 1;
  SweepRunOptions options;
  options.explain = true;
  const SweepResult result = SweepRunner(spec).run(options);
  ASSERT_EQ(result.row_anatomy.size(), result.rows.size());
  ASSERT_EQ(result.row_breakdown.size(), result.rows.size());
  for (std::size_t r = 0; r < result.rows.size(); ++r) {
    EXPECT_TRUE(result.row_anatomy[r].finalized()) << "row " << r;
    EXPECT_GT(result.row_anatomy[r].messages(), 0u) << "row " << r;
    EXPECT_FALSE(result.row_breakdown[r].clusters.empty()) << "row " << r;
    EXPECT_EQ(result.row_breakdown[r].lambda_g, result.rows[r].lambda);
  }

  // The sweep JSON embeds one explain object per row, plus the flight
  // recorder health fields when probes/traces were collected.
  std::ostringstream out;
  write_json(result, out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"explain\""), std::string::npos);
  EXPECT_NE(json.find("\"bottleneck_station\""), std::string::npos);

  // Explain collection is rep-0-only observation: results stay identical
  // to a bare run of the same spec.
  const SweepResult bare = SweepRunner(spec).run();
  EXPECT_TRUE(bare.row_anatomy.empty());
  EXPECT_TRUE(bare.row_breakdown.empty());
  expect_rows_identical(result, bare);
}

TEST(SweepRunner, ExplainOnModelOnlySweepFillsBreakdownOnly) {
  ScenarioSpec spec = tiny_spec();
  spec.run_sim = false;
  SweepRunOptions options;
  options.explain = true;
  const SweepResult result = SweepRunner(spec).run(options);
  EXPECT_TRUE(result.row_anatomy.empty());
  ASSERT_EQ(result.row_breakdown.size(), result.rows.size());
  std::ostringstream out;
  write_json(result, out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"explain\""), std::string::npos);
  EXPECT_NE(json.find("\"has_measured\":false"), std::string::npos);
}

TEST(SweepRunner, ObservabilityHealthFieldsInJson) {
  ScenarioSpec spec = tiny_spec();
  spec.replications = 1;
  SweepRunOptions options;
  options.collect_probes = true;
  options.collect_traces = true;
  const SweepResult result = SweepRunner(spec).run(options);
  std::ostringstream out;
  write_json(result, out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"probe_decimations\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_dropped\""), std::string::npos);
}

TEST(SweepRunner, ModelsOnlySweepSkipsSimulation) {
  ScenarioSpec spec = tiny_spec();
  spec.run_sim = false;
  const SweepResult result = SweepRunner(spec).run();
  EXPECT_EQ(result.sim_tasks, 0);
  for (const SweepRow& row : result.rows) {
    EXPECT_FALSE(row.sim_run);
    EXPECT_TRUE(row.paper_run);
  }
}

// Acceptance check for the Fig. 3 sweep: 8 workers must beat 1 worker by
// > 3x. Only meaningful on hardware that can actually run 8 threads, so
// it skips elsewhere (the thread-count *invariance* tests above run
// everywhere and do not depend on physical parallelism).
TEST(SweepRunner, SpeedupOnFig3SweepWithEightThreads) {
  if (std::thread::hardware_concurrency() < 8)
    GTEST_SKIP() << "needs >= 8 hardware threads, have "
                 << std::thread::hardware_concurrency();

  ScenarioSpec spec;
  spec.name = "fig3_m32_speedup";
  spec.systems.push_back({"org_a", topo::SystemConfig::table1_org_a()});
  spec.message_flits = {32};
  spec.flit_bytes = {256, 512};
  for (int i = 1; i <= 10; ++i) spec.loads.push_back(0.5e-4 * i);
  spec.run_paper_model = false;
  spec.run_refined_model = false;
  spec.warmup = 500;
  spec.measured = 5'000;
  const SweepRunner runner(spec);

  SweepRunOptions one;
  one.threads = 1;
  SweepRunOptions eight;
  eight.threads = 8;
  // Order: parallel first so any OS-level warmup penalizes the baseline,
  // not the measurement.
  const SweepResult par = runner.run(eight);
  const SweepResult ser = runner.run(one);
  expect_rows_identical(ser, par);
  const double speedup = ser.wall_seconds / par.wall_seconds;
  EXPECT_GT(speedup, 3.0) << "1 thread: " << ser.wall_seconds
                          << "s, 8 threads: " << par.wall_seconds << "s";
}

}  // namespace
}  // namespace mcs::exp
