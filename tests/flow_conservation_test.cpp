// System-level flow conservation: the simulator's measured per-class
// channel crossing rates must match the rates derived from the traffic
// specification — the same identity the analytical models are built on.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "sim/simulator.hpp"
#include "topology/tree_math.hpp"

namespace mcs::sim {
namespace {

class FlowConservationTest : public ::testing::Test {
 protected:
  static topo::SystemConfig config() {
    topo::SystemConfig cfg;
    cfg.m = 4;
    cfg.cluster_heights = {2, 2, 3, 3};
    return cfg;
  }
};

TEST_F(FlowConservationTest, ClassRatesMatchTrafficSpecification) {
  const topo::SystemConfig cfg = config();
  const topo::MultiClusterTopology topology(cfg);
  const model::NetworkParams params;
  const double lambda = 2e-4;

  SimConfig sim_cfg;
  sim_cfg.warmup_messages = 2'000;
  sim_cfg.measured_messages = 30'000;
  sim_cfg.collect_channel_stats = true;
  Simulator simulator(topology, params, lambda, sim_cfg);
  const SimResult result = simulator.run();
  ASSERT_FALSE(result.saturated);

  // Expected totals (messages/time over all channels of a class).
  std::map<std::tuple<int, int, int>, double> expected;
  double total_external = 0.0;
  for (int i = 0; i < cfg.cluster_count(); ++i) {
    const topo::TreeShape shape{
        cfg.m, cfg.cluster_heights[static_cast<std::size_t>(i)]};
    const auto ni = static_cast<double>(shape.node_count());
    const double po = cfg.p_outgoing(i);
    const double internal = ni * (1.0 - po) * lambda;
    const double external = ni * po * lambda;
    total_external += external;
    expected[{static_cast<int>(NetKind::kIcn1),
              static_cast<int>(topo::ChannelKind::kInjection), 0}] +=
        internal;
    expected[{static_cast<int>(NetKind::kEcn1),
              static_cast<int>(topo::ChannelKind::kInjection), 0}] +=
        2.0 * external;  // source leg + destination leg
  }
  expected[{static_cast<int>(NetKind::kIcn2),
            static_cast<int>(topo::ChannelKind::kInjection), 0}] =
      total_external;

  for (const auto& [key, want] : expected) {
    double got = 0.0;
    for (const auto& c : result.channel_classes) {
      if (static_cast<int>(c.net) == std::get<0>(key) &&
          static_cast<int>(c.kind) == std::get<1>(key) &&
          c.level == std::get<2>(key))
        got += c.mean_message_rate * static_cast<double>(c.channels);
    }
    EXPECT_NEAR(got, want, 0.1 * want)
        << "class (" << std::get<0>(key) << "," << std::get<1>(key) << ")";
  }
}

TEST_F(FlowConservationTest, InjectionEqualsEjectionPerNetwork) {
  const topo::MultiClusterTopology topology(config());
  const model::NetworkParams params;
  SimConfig sim_cfg;
  sim_cfg.warmup_messages = 1'000;
  sim_cfg.measured_messages = 15'000;
  sim_cfg.collect_channel_stats = true;
  Simulator simulator(topology, params, 1.5e-4, sim_cfg);
  const SimResult result = simulator.run();
  ASSERT_FALSE(result.saturated);

  std::map<int, double> inject, eject;
  for (const auto& c : result.channel_classes) {
    const double total =
        c.mean_message_rate * static_cast<double>(c.channels);
    if (c.kind == topo::ChannelKind::kInjection)
      inject[static_cast<int>(c.net)] += total;
    if (c.kind == topo::ChannelKind::kEjection)
      eject[static_cast<int>(c.net)] += total;
  }
  for (const auto& [net, in] : inject)
    EXPECT_NEAR(in, eject[net], 0.05 * in) << "network " << net;
}

TEST_F(FlowConservationTest, UpEqualsDownPerBoundary) {
  // Every journey that ascends through boundary l also descends through
  // it (in its own or the destination tree); class totals must pair up.
  const topo::MultiClusterTopology topology(config());
  const model::NetworkParams params;
  SimConfig sim_cfg;
  sim_cfg.warmup_messages = 1'000;
  sim_cfg.measured_messages = 15'000;
  sim_cfg.collect_channel_stats = true;
  Simulator simulator(topology, params, 1.5e-4, sim_cfg);
  const SimResult result = simulator.run();
  ASSERT_FALSE(result.saturated);

  std::map<std::pair<int, int>, double> up, down;
  for (const auto& c : result.channel_classes) {
    const double total =
        c.mean_message_rate * static_cast<double>(c.channels);
    if (c.kind == topo::ChannelKind::kUp)
      up[{static_cast<int>(c.net), c.level}] += total;
    if (c.kind == topo::ChannelKind::kDown)
      down[{static_cast<int>(c.net), c.level}] += total;
  }
  for (const auto& [key, u] : up)
    EXPECT_NEAR(u, down[key], 0.05 * u + 1e-6)
        << "net " << key.first << " boundary " << key.second;
}

}  // namespace
}  // namespace mcs::sim
