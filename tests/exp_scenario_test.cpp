#include "exp/scenario.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/error.hpp"

namespace mcs::exp {
namespace {

const char* kFullSpec = R"(
# A fully-specified scenario exercising every section and key.
[sweep]
name          = full
seed          = 99
replications  = 3
warmup        = 500
measured      = 4000
message_flits = 32, 64
flit_bytes    = 256, 512
loads         = 1e-5, 2e-5
models        = paper, refined
sim           = true
knee          = true
relay         = store_forward, cut_through
flow          = wormhole, store_and_forward
alpha_net     = 0.03
alpha_sw      = 0.02
beta_net      = 0.004

[system tiny]
m       = 4
heights = 1, 1

[system homog]
preset   = homogeneous
m        = 4
height   = 2
clusters = 3

[system org_a]
preset = table1_org_a

[pattern uniform]
kind = uniform

[pattern local]
kind           = local_favor
local_fraction = 0.7   ; inline comment

[pattern hot]
kind             = hotspot
hotspot_fraction = 0.1
hotspot_node     = 2

[pattern tornado]
kind          = cluster_permutation
cluster_shift = 2
)";

TEST(Scenario, ParsesEverySectionAndKey) {
  const ScenarioSpec spec = parse_scenario_string(kFullSpec);
  EXPECT_EQ(spec.name, "full");
  EXPECT_EQ(spec.seed, 99u);
  EXPECT_EQ(spec.replications, 3);
  EXPECT_EQ(spec.warmup, 500);
  EXPECT_EQ(spec.measured, 4000);
  ASSERT_EQ(spec.message_flits.size(), 2u);
  EXPECT_EQ(spec.message_flits[1], 64);
  ASSERT_EQ(spec.flit_bytes.size(), 2u);
  EXPECT_DOUBLE_EQ(spec.flit_bytes[1], 512);
  ASSERT_EQ(spec.loads.size(), 2u);
  EXPECT_DOUBLE_EQ(spec.loads[0], 1e-5);
  EXPECT_TRUE(spec.run_sim);
  EXPECT_TRUE(spec.run_paper_model);
  EXPECT_TRUE(spec.run_refined_model);
  EXPECT_TRUE(spec.find_knee);
  ASSERT_EQ(spec.relay_modes.size(), 2u);
  EXPECT_EQ(spec.relay_modes[1], sim::RelayMode::kCutThrough);
  ASSERT_EQ(spec.flow_controls.size(), 2u);
  EXPECT_EQ(spec.flow_controls[1], sim::FlowControl::kStoreAndForward);
  EXPECT_DOUBLE_EQ(spec.base_params.alpha_net, 0.03);
  EXPECT_DOUBLE_EQ(spec.base_params.alpha_sw, 0.02);
  EXPECT_DOUBLE_EQ(spec.base_params.beta_net, 0.004);

  ASSERT_EQ(spec.systems.size(), 3u);
  EXPECT_EQ(spec.systems[0].id, "tiny");
  EXPECT_EQ(spec.systems[0].config.m, 4);
  EXPECT_EQ(spec.systems[0].config.cluster_heights,
            (std::vector<int>{1, 1}));
  EXPECT_EQ(spec.systems[1].config.cluster_count(), 3);
  EXPECT_EQ(spec.systems[2].config, topo::SystemConfig::table1_org_a());

  ASSERT_EQ(spec.patterns.size(), 4u);
  EXPECT_EQ(spec.patterns[1].pattern.kind, sim::PatternKind::kLocalFavor);
  EXPECT_DOUBLE_EQ(spec.patterns[1].pattern.local_fraction, 0.7);
  EXPECT_EQ(spec.patterns[2].pattern.hotspot_node, 2);
  EXPECT_EQ(spec.patterns[3].pattern.kind,
            sim::PatternKind::kClusterPermutation);
  EXPECT_EQ(spec.patterns[3].pattern.cluster_shift, 2);

  // 3 systems x 2 flits x 2 bytes x 4 patterns x 2 relays x 2 flows x
  // 2 loads.
  EXPECT_EQ(spec.grid_size(), 3 * 2 * 2 * 4 * 2 * 2 * 2);
}

TEST(Scenario, DefaultsApplyWhenKeysOmitted) {
  const ScenarioSpec spec = parse_scenario_string(R"(
[sweep]
loads = 1e-4

[system s]
preset = homogeneous
m = 4
height = 1
clusters = 2
)");
  EXPECT_EQ(spec.name, "sweep");
  EXPECT_EQ(spec.replications, 1);
  EXPECT_EQ(spec.message_flits, (std::vector<int>{32}));
  EXPECT_EQ(spec.flit_bytes, (std::vector<double>{256}));
  EXPECT_TRUE(spec.patterns.empty());  // implicit uniform
  ASSERT_EQ(spec.relay_modes.size(), 1u);
  EXPECT_EQ(spec.relay_modes[0], sim::RelayMode::kStoreForward);
  EXPECT_EQ(spec.grid_size(), 1);
}

TEST(Scenario, LoadGridExpandsLikeTheBenchHarness) {
  const ScenarioSpec spec = parse_scenario_string(R"(
[sweep]
load_grid = 1e-4 : 3

[system s]
m = 4
heights = 1, 1
)");
  // {s/4, s/2, s, 2s, 3s}
  ASSERT_EQ(spec.loads.size(), 5u);
  EXPECT_DOUBLE_EQ(spec.loads[0], 0.25e-4);
  EXPECT_DOUBLE_EQ(spec.loads[1], 0.5e-4);
  EXPECT_DOUBLE_EQ(spec.loads[2], 1e-4);
  EXPECT_DOUBLE_EQ(spec.loads[4], 3e-4);
}

TEST(Scenario, ParsesSearchBlockAndFindSaturation) {
  const ScenarioSpec spec = parse_scenario_string(R"(
[sweep]
loads = 1e-4
find_saturation = true

[search]
rel_precision = 0.08
r_min = 3
r_max = 9
warmup = fraction
rel_tol = 0.03
blowup = 4.5

[system s]
m = 4
heights = 1, 1
)");
  EXPECT_TRUE(spec.find_sim_saturation);
  EXPECT_DOUBLE_EQ(spec.search.seq.rel_precision, 0.08);
  EXPECT_EQ(spec.search.seq.r_min, 3);
  EXPECT_EQ(spec.search.seq.r_max, 9);
  EXPECT_EQ(spec.search_warmup, sim::WarmupDeletion::kFraction);
  EXPECT_DOUBLE_EQ(spec.search.rel_tol, 0.03);
  EXPECT_DOUBLE_EQ(spec.search.latency_blowup, 4.5);
}

TEST(Scenario, SearchBlockAloneDoesNotEnableTheSearch) {
  // [search] configures; enabling is an explicit [sweep] key or the CLI
  // flag (so a tuned block in a checked-in scenario costs nothing until
  // asked for).
  const ScenarioSpec spec = parse_scenario_string(R"(
[sweep]
loads = 1e-4

[search]
r_max = 9

[system s]
m = 4
heights = 1, 1
)");
  EXPECT_FALSE(spec.find_sim_saturation);
  EXPECT_EQ(spec.search.seq.r_max, 9);
  // Defaults for untouched [search] keys are SaturationSearchConfig's
  // own (the spec stores that struct directly, so they cannot drift).
  EXPECT_EQ(spec.search_warmup, sim::WarmupDeletion::kMser5);
  EXPECT_DOUBLE_EQ(spec.search.latency_blowup,
                   SaturationSearchConfig{}.latency_blowup);
}

TEST(Scenario, RejectsMalformedSearchBlocks) {
  const std::string tail = "\n[system s]\nm = 4\nheights = 1, 1\n";
  const std::string head = "[sweep]\nloads = 1e-4\n";
  // Unknown [search] key (with suggestions machinery downstream).
  EXPECT_THROW(
      parse_scenario_string(head + "[search]\nrel_prec = 0.1\n" + tail),
      ConfigError);
  // Unknown warmup mode.
  EXPECT_THROW(
      parse_scenario_string(head + "[search]\nwarmup = mser\n" + tail),
      ConfigError);
  // Duplicate [search] section.
  EXPECT_THROW(parse_scenario_string(
                   head + "[search]\nr_min = 2\n[search]\nr_min = 3\n" + tail),
               ConfigError);
  // Out-of-range control values.
  EXPECT_THROW(
      parse_scenario_string(head + "[search]\nr_min = 0\n" + tail),
      ConfigError);
  EXPECT_THROW(parse_scenario_string(
                   head + "[search]\nr_min = 5\nr_max = 4\n" + tail),
               ConfigError);
  EXPECT_THROW(
      parse_scenario_string(head + "[search]\nrel_precision = 0\n" + tail),
      ConfigError);
  EXPECT_THROW(
      parse_scenario_string(head + "[search]\nblowup = 1\n" + tail),
      ConfigError);
}

TEST(Scenario, RejectsMalformedSpecs) {
  const std::string valid_tail = R"(
[system s]
m = 4
heights = 1, 1
)";
  // No loads at all.
  EXPECT_THROW(parse_scenario_string("[sweep]\nname = x\n" + valid_tail),
               ConfigError);
  // No [system] section.
  EXPECT_THROW(parse_scenario_string("[sweep]\nloads = 1e-4\n"),
               ConfigError);
  // Key before any section.
  EXPECT_THROW(parse_scenario_string("loads = 1e-4\n" + valid_tail),
               ConfigError);
  // Unknown sweep key.
  EXPECT_THROW(parse_scenario_string(
                   "[sweep]\nloads = 1e-4\nbogus = 1\n" + valid_tail),
               ConfigError);
  // Unknown section.
  EXPECT_THROW(parse_scenario_string("[nonsense]\nx = 1\n"), ConfigError);
  // Unterminated section header.
  EXPECT_THROW(parse_scenario_string("[sweep\nloads = 1e-4\n" + valid_tail),
               ConfigError);
  // Line without '='.
  EXPECT_THROW(parse_scenario_string(
                   "[sweep]\nloads 1e-4\n" + valid_tail),
               ConfigError);
  // Non-numeric load.
  EXPECT_THROW(parse_scenario_string(
                   "[sweep]\nloads = abc\n" + valid_tail),
               ConfigError);
  // Malformed load_grid.
  EXPECT_THROW(parse_scenario_string(
                   "[sweep]\nload_grid = 1e-4\n" + valid_tail),
               ConfigError);
  // Negative replications.
  EXPECT_THROW(parse_scenario_string(
                   "[sweep]\nloads = 1e-4\nreplications = -2\n" + valid_tail),
               ConfigError);
  // Unknown model / relay / flow / pattern kind.
  EXPECT_THROW(parse_scenario_string(
                   "[sweep]\nloads = 1e-4\nmodels = quantum\n" + valid_tail),
               ConfigError);
  EXPECT_THROW(parse_scenario_string(
                   "[sweep]\nloads = 1e-4\nrelay = teleport\n" + valid_tail),
               ConfigError);
  EXPECT_THROW(parse_scenario_string(
                   "[sweep]\nloads = 1e-4\nflow = psychic\n" + valid_tail),
               ConfigError);
  EXPECT_THROW(parse_scenario_string("[sweep]\nloads = 1e-4\n" + valid_tail +
                                     "[pattern p]\nkind = zigzag\n"),
               ConfigError);
  // Pattern without kind.
  EXPECT_THROW(parse_scenario_string("[sweep]\nloads = 1e-4\n" + valid_tail +
                                     "[pattern p]\nlocal_fraction = 0.5\n"),
               ConfigError);
  // Duplicate system / pattern ids.
  EXPECT_THROW(parse_scenario_string("[sweep]\nloads = 1e-4\n" + valid_tail +
                                     valid_tail),
               ConfigError);
  EXPECT_THROW(parse_scenario_string("[sweep]\nloads = 1e-4\n" + valid_tail +
                                     "[pattern p]\nkind = uniform\n"
                                     "[pattern p]\nkind = uniform\n"),
               ConfigError);
  // Repeated list key (would silently multiply the grid).
  EXPECT_THROW(parse_scenario_string("[sweep]\nloads = 1e-4\n"
                                     "message_flits = 32\n"
                                     "message_flits = 64\n" +
                                     valid_tail),
               ConfigError);
  // System without shape.
  EXPECT_THROW(parse_scenario_string("[sweep]\nloads = 1e-4\n[system s]\n"
                                     "m = 4\n"),
               ConfigError);
  // Unknown preset.
  EXPECT_THROW(parse_scenario_string("[sweep]\nloads = 1e-4\n[system s]\n"
                                     "preset = table2\n"),
               ConfigError);
  // Invalid topology (odd arity) is caught by validate().
  EXPECT_THROW(parse_scenario_string("[sweep]\nloads = 1e-4\n[system s]\n"
                                     "m = 3\nheights = 1, 1\n"),
               ConfigError);
  // Nothing to evaluate.
  EXPECT_THROW(parse_scenario_string(
                   "[sweep]\nloads = 1e-4\nmodels = none\nsim = false\n" +
                   valid_tail),
               ConfigError);
}

TEST(Scenario, ValidateRejectsBadFieldRanges) {
  ScenarioSpec spec = parse_scenario_string(
      "[sweep]\nloads = 1e-4\n[system s]\nm = 4\nheights = 1, 1\n");
  spec.loads = {-1e-4};
  EXPECT_THROW(spec.validate(), ConfigError);
  spec.loads = {1e-4};
  spec.measured = 0;
  EXPECT_THROW(spec.validate(), ConfigError);
  spec.measured = 100;
  spec.flit_bytes = {};
  EXPECT_THROW(spec.validate(), ConfigError);
}

TEST(Scenario, ErrorsNameSourceAndLine) {
  try {
    (void)parse_scenario_string("[sweep]\nbogus = 1\n");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("<string>:2"), std::string::npos)
        << e.what();
  }
}

TEST(Scenario, CheckedInScenariosParse) {
  // Every spec shipped under scenarios/ must stay loadable.
  for (const char* name :
       {"table1", "fig3_m32", "fig3_m64", "fig4_m32", "fig4_m64",
        "traffic_patterns"}) {
    const std::string path =
        std::string(MCS_SCENARIO_DIR) + "/" + name + ".ini";
    EXPECT_NO_THROW({
      const ScenarioSpec spec = load_scenario(path);
      EXPECT_GT(spec.grid_size(), 0) << path;
    }) << path;
  }
}

}  // namespace
}  // namespace mcs::exp
