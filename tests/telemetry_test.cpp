// Run-telemetry tests across replication and sweep aggregation:
//
//  - the saturation-cause regression (the per-run SimResult cause tokens
//    used to be dropped on the floor by run_replications' aggregation;
//    they must survive into ReplicationResult, the sweep rows, the table
//    and the JSON/CSV reports),
//  - SweepRunner task stats (queue wait / exec / worker id per task) and
//    the RunManifest attached to every result,
//  - flight-recorder collection (row probes + traces) being thread- and
//    observer-invariant, and the sweep JSON round-tripping through the
//    json_mini test parser.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "exp/scenario.hpp"
#include "exp/sweep.hpp"
#include "exp/sweep_io.hpp"
#include "sim/replication.hpp"
#include "support/json_mini.hpp"
#include "util/error.hpp"

namespace mcs {
namespace {

sim::SimConfig small_sim_config() {
  sim::SimConfig cfg;
  cfg.seed = 20060814;
  cfg.warmup_messages = 100;
  cfg.measured_messages = 1000;
  cfg.batch_size = 100;
  return cfg;
}

// Regression: before ReplicationResult::saturation_causes existed, the
// per-run SimResult::saturation_cause tokens were discarded by
// aggregation — a saturated replication set could not say WHICH cap it
// hit. These pin the cause surviving for two different caps.
TEST(ReplicationTelemetry, EventCapCauseSurvivesAggregation) {
  const topo::MultiClusterTopology topology(
      topo::SystemConfig::homogeneous(4, 1, 2));
  const model::NetworkParams params;
  sim::SimConfig cfg = small_sim_config();
  cfg.max_events = 2'000;  // far too few to deliver 1000 measured messages

  const sim::ReplicationResult result =
      sim::run_replications(topology, params, 5e-4, cfg, 3);
  EXPECT_EQ(result.saturated, 3);
  EXPECT_TRUE(result.all_saturated);
  ASSERT_EQ(result.saturation_causes.size(), 1u);  // same cap every run
  EXPECT_EQ(result.saturation_causes[0], "events");
  for (const sim::SimResult& run : result.runs) {
    EXPECT_TRUE(run.saturated);
    EXPECT_EQ(run.saturation_cause, "events");
    EXPECT_FALSE(run.saturation_reason.empty());
  }
}

TEST(ReplicationTelemetry, GeneratedCapCauseSurvivesAggregation) {
  const topo::MultiClusterTopology topology(
      topo::SystemConfig::homogeneous(4, 1, 2));
  const model::NetworkParams params;
  sim::SimConfig cfg = small_sim_config();
  cfg.max_generated = 50;  // below even the warmup phase

  const sim::ReplicationResult result =
      sim::run_replications(topology, params, 5e-4, cfg, 2);
  EXPECT_EQ(result.saturated, 2);
  ASSERT_FALSE(result.saturation_causes.empty());
  EXPECT_EQ(result.saturation_causes[0], "generated");
}

TEST(ReplicationTelemetry, SteadyRunsCarryNoCause) {
  const topo::MultiClusterTopology topology(
      topo::SystemConfig::homogeneous(4, 1, 2));
  const model::NetworkParams params;
  const sim::ReplicationResult result = sim::run_replications(
      topology, params, 5e-4, small_sim_config(), 2);
  EXPECT_EQ(result.saturated, 0);
  EXPECT_TRUE(result.saturation_causes.empty());
  for (const sim::SimResult& run : result.runs)
    EXPECT_TRUE(run.saturation_cause.empty());
}

exp::ScenarioSpec base_spec() {
  exp::ScenarioSpec spec;
  spec.name = "telemetry";
  spec.systems.push_back(
      {"h1x2", topo::SystemConfig::homogeneous(4, 1, 2)});
  spec.loads = {5e-4};
  spec.replications = 2;
  spec.warmup = 200;
  spec.measured = 2'000;
  return spec;
}

TEST(SweepTelemetry, SaturatedRowNamesItsCauseEverywhere) {
  exp::ScenarioSpec spec = base_spec();
  spec.loads = {5e-4, 0.2};  // second point is far past saturation
  spec.run_paper_model = false;
  spec.run_refined_model = false;
  const exp::SweepResult result = exp::SweepRunner(spec).run();
  ASSERT_EQ(result.rows.size(), 2u);

  const exp::SweepRow& steady = result.rows[0];
  EXPECT_EQ(steady.saturated, 0);
  EXPECT_TRUE(steady.saturation_causes.empty());

  const exp::SweepRow& saturated = result.rows[1];
  EXPECT_EQ(saturated.sim_state, 1);
  EXPECT_EQ(saturated.saturated, 2);
  ASSERT_FALSE(saturated.saturation_causes.empty());
  // The table names the cap(s) inline instead of a bare "saturated".
  const std::string table = exp::to_table(result).render();
  EXPECT_NE(
      table.find("saturated[" + saturated.saturation_causes + "]"),
      std::string::npos)
      << table;
  // And the JSON report carries the same string.
  std::ostringstream json;
  exp::write_json(result, json);
  EXPECT_NE(json.str().find("\"saturation_causes\":\"" +
                            saturated.saturation_causes + "\""),
            std::string::npos);
}

TEST(SweepTelemetry, TaskStatsCoverEveryTask) {
  exp::ScenarioSpec spec = base_spec();
  exp::SweepRunOptions options;
  options.threads = 2;
  const exp::SweepResult result = exp::SweepRunner(spec).run(options);

  // 1 model group + 1 row x 2 replications = 3 tasks.
  ASSERT_EQ(result.task_stats.size(), 3u);
  int models = 0, sims = 0;
  double total_exec = 0.0;
  for (const exp::TaskStat& stat : result.task_stats) {
    if (stat.kind == 'm') ++models;
    else if (stat.kind == 's') ++sims;
    else FAIL() << "unclassified task kind '" << stat.kind << "'";
    EXPECT_GE(stat.queue_wait, 0.0);
    EXPECT_GE(stat.exec, 0.0);
    total_exec += stat.exec;
    EXPECT_GE(stat.thread, 0);
    EXPECT_LT(stat.thread, result.threads);
  }
  EXPECT_EQ(models, 1);
  EXPECT_EQ(sims, static_cast<int>(result.sim_tasks));
  EXPECT_GT(total_exec, 0.0);

  // The manifest is live provenance, not defaults.
  EXPECT_FALSE(result.manifest.git.empty());
  EXPECT_FALSE(result.manifest.compiler.empty());
  EXPECT_GT(result.manifest.wall_seconds, 0.0);
}

TEST(SweepTelemetry, FlightRecorderCapturesReplicationZeroPerRow) {
  exp::ScenarioSpec spec = base_spec();
  spec.run_paper_model = false;
  spec.run_refined_model = false;
  spec.trace.sample_every = 8;
  exp::SweepRunOptions options;
  options.threads = 2;
  options.collect_probes = true;
  options.collect_traces = true;
  const exp::SweepResult result = exp::SweepRunner(spec).run(options);

  ASSERT_EQ(result.row_probes.size(), result.rows.size());
  ASSERT_EQ(result.row_traces.size(), result.rows.size());
  for (std::size_t r = 0; r < result.rows.size(); ++r) {
    EXPECT_FALSE(result.row_probes[r].samples().empty()) << "row " << r;
    EXPECT_FALSE(result.row_traces[r].events().empty()) << "row " << r;
    EXPECT_EQ(result.row_traces[r].pid(), static_cast<int>(r));
    EXPECT_EQ(result.row_traces[r].label(),
              exp::row_label(result.rows[r]));
  }
  EXPECT_EQ(exp::row_label(result.rows[0]),
            "h1x2/uniform/sf/wh f32 lambda=0.0005");

  // Collection must not perturb results (the observers attach to
  // replication 0 only, and observation is bit-invisible): a bare run
  // produces identical rows — and so does a wider pool.
  exp::SweepRunOptions bare;
  bare.threads = 1;
  const exp::SweepResult base = exp::SweepRunner(spec).run(bare);
  exp::SweepRunOptions wide = options;
  wide.threads = 4;
  const exp::SweepResult wide_result = exp::SweepRunner(spec).run(wide);
  ASSERT_EQ(base.rows.size(), result.rows.size());
  for (std::size_t r = 0; r < base.rows.size(); ++r) {
    EXPECT_EQ(base.rows[r].sim_latency, result.rows[r].sim_latency);
    EXPECT_EQ(base.rows[r].sim_ci, result.rows[r].sim_ci);
    EXPECT_EQ(base.rows[r].completed, result.rows[r].completed);
    EXPECT_EQ(base.rows[r].saturation_causes,
              result.rows[r].saturation_causes);
    EXPECT_EQ(wide_result.rows[r].sim_latency, result.rows[r].sim_latency);
  }
  // The captures themselves are deterministic too: same samples and
  // spans whatever the thread count.
  ASSERT_EQ(wide_result.row_probes.size(), result.row_probes.size());
  for (std::size_t r = 0; r < result.row_probes.size(); ++r) {
    const auto& a = result.row_probes[r].samples();
    const auto& b = wide_result.row_probes[r].samples();
    ASSERT_EQ(a.size(), b.size()) << "row " << r;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].time, b[i].time);
      EXPECT_EQ(a[i].events, b[i].events);
    }
    EXPECT_EQ(result.row_traces[r].events().size(),
              wide_result.row_traces[r].events().size());
  }
}

TEST(SweepTelemetry, JsonReportRoundTripsThroughParser) {
  exp::ScenarioSpec spec = base_spec();
  spec.loads = {5e-4, 0.2};
  const exp::SweepResult result = exp::SweepRunner(spec).run();
  std::ostringstream out;
  exp::write_json(result, out);

  const testsupport::JsonValue doc = testsupport::parse_json(out.str());
  EXPECT_EQ(doc.at("name").string, "telemetry");
  EXPECT_EQ(doc.at("manifest").at("git").string, result.manifest.git);
  EXPECT_GE(doc.at("manifest").at("wall_seconds").number, 0.0);
  ASSERT_EQ(doc.at("task_stats").array.size(), result.task_stats.size());
  for (const testsupport::JsonValue& stat : doc.at("task_stats").array) {
    EXPECT_FALSE(stat.at("kind").string.empty());
    EXPECT_GE(stat.at("exec").number, 0.0);
    EXPECT_GE(stat.at("thread").number, 0.0);
  }
  ASSERT_EQ(doc.at("rows").array.size(), result.rows.size());
  const testsupport::JsonValue& saturated_row = doc.at("rows").array[1];
  EXPECT_EQ(saturated_row.at("saturation_causes").string,
            result.rows[1].saturation_causes);
  EXPECT_EQ(saturated_row.at("sim_state").number, 1.0);
  EXPECT_FALSE(doc.at("rows").array[0].has("saturation_causes"));
}

TEST(ScenarioObserve, ObserveBlockParsesIntoSpec) {
  const exp::ScenarioSpec spec = exp::parse_scenario_string(
      "[sweep]\n"
      "name = obs\n"
      "loads = 5e-4\n"
      "[system s]\n"
      "preset = homogeneous\n"
      "m = 4\n"
      "height = 1\n"
      "clusters = 2\n"
      "[observe]\n"
      "probe_interval = 0.5\n"
      "probe_max_samples = 64\n"
      "trace_sample = 4\n"
      "trace_max_events = 1000\n");
  EXPECT_DOUBLE_EQ(spec.probe.interval, 0.5);
  EXPECT_EQ(spec.probe.max_samples, 64u);
  EXPECT_EQ(spec.trace.sample_every, 4);
  EXPECT_EQ(spec.trace.max_events, 1000u);

  // Invalid flight-recorder knobs fail at parse time, not mid-sweep.
  EXPECT_THROW(exp::parse_scenario_string("[sweep]\n"
                                          "name = bad\n"
                                          "loads = 5e-4\n"
                                          "[system s]\n"
                                          "preset = homogeneous\n"
                                          "m = 4\n"
                                          "height = 1\n"
                                          "clusters = 2\n"
                                          "[observe]\n"
                                          "trace_sample = 0\n"),
               ConfigError);
}

}  // namespace
}  // namespace mcs
