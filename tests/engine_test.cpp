// Wormhole engine unit tests, including an exhaustive randomized
// comparison against the brute-force flit-level reference simulator.
#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "sim/event_queue.hpp"
#include "support/flit_reference.hpp"
#include "util/rng.hpp"

namespace mcs::sim {
namespace {

// Keyed by the spawn-time msg id: worm ids are pool-recycled, msg ids are
// stable.
struct DoneCapture : WormholeEngine::Listener {
  std::map<std::int32_t, double> done;
  std::map<std::int32_t, std::vector<double>> acquires;
  const WormholeEngine* engine = nullptr;
  void on_worm_done(WormId worm, double time) override {
    const Worm& w = engine->worm(worm);
    done[w.msg] = time;
    const std::span<const double> acquire = engine->acquire_times(worm);
    acquires[w.msg].assign(acquire.begin(), acquire.end());
  }
};

void run_all(EventQueue& queue, WormholeEngine& engine) {
  while (!queue.empty()) engine.handle(queue.pop());
}

TEST(Engine, SingleWormZeroLoadUniformService) {
  // Classic wormhole latency: K hops of t plus (M-1) flits at t each.
  const double t = 0.5;
  const int flits = 8;
  EventQueue queue;
  DoneCapture capture;
  WormholeEngine engine({t, t, t, t}, flits, queue, capture);
  capture.engine = &engine;
  const std::vector<GlobalChannelId> path = {0, 1, 2, 3};
  engine.spawn(0, path, 1.0);
  run_all(queue, engine);
  ASSERT_TRUE(capture.done.count(0));
  EXPECT_NEAR(capture.done[0], 1.0 + 4 * t + (flits - 1) * t, 1e-12);
}

TEST(Engine, SingleWormMixedServiceMatchesReference) {
  const std::vector<double> service = {0.3, 0.9, 0.9, 0.3};
  const int flits = 6;
  EventQueue queue;
  DoneCapture capture;
  WormholeEngine engine(service, flits, queue, capture);
  capture.engine = &engine;
  const std::vector<GlobalChannelId> path = {0, 1, 2, 3};
  engine.spawn(0, path, 0.0);
  run_all(queue, engine);

  testsupport::RefScenario ref;
  ref.channel_service = service;
  ref.flits = flits;
  ref.worms.push_back({0.0, {0, 1, 2, 3}});
  const auto outcome = testsupport::simulate_flit_level(ref);
  EXPECT_NEAR(capture.done[0], outcome.done_time[0], 1e-9);
}

TEST(Engine, TwoWormsFifoOnSharedChannel) {
  // Both worms use channel 0 only; the second must wait for the first
  // tail to cross: service M*t each, back to back.
  const double t = 1.0;
  const int flits = 3;
  EventQueue queue;
  DoneCapture capture;
  WormholeEngine engine({t}, flits, queue, capture);
  capture.engine = &engine;
  const std::vector<GlobalChannelId> path = {0};
  engine.spawn(0, path, 0.0);
  engine.spawn(1, path, 0.1);
  run_all(queue, engine);
  EXPECT_NEAR(capture.done[0], 3.0, 1e-12);
  EXPECT_NEAR(capture.acquires[1][0], 3.0, 1e-12);  // granted at release
  EXPECT_NEAR(capture.done[1], 6.0, 1e-12);
}

TEST(Engine, FifoOrderAmongThreeWaiters) {
  const double t = 1.0;
  EventQueue queue;
  DoneCapture capture;
  WormholeEngine engine({t}, 2, queue, capture);
  capture.engine = &engine;
  // Spawns must be issued in time order (the arbiter FIFO is request
  // order); the Simulator guarantees this by spawning from timed events.
  const std::vector<GlobalChannelId> path = {0};
  engine.spawn(0, path, 0.0);
  engine.spawn(2, path, 0.1);
  engine.spawn(1, path, 0.2);
  run_all(queue, engine);
  EXPECT_LT(capture.done[0], capture.done[2]);
  EXPECT_LT(capture.done[2], capture.done[1]);
}

TEST(Engine, WormSlotsAreRecycled) {
  EventQueue queue;
  DoneCapture capture;
  WormholeEngine engine({1.0}, 2, queue, capture);
  capture.engine = &engine;
  const std::vector<GlobalChannelId> path = {0};
  const WormId first = engine.spawn(0, path, 0.0);
  run_all(queue, engine);
  EXPECT_EQ(engine.live_worms(), 0);
  const WormId second = engine.spawn(1, path, 10.0);
  EXPECT_EQ(second, first);  // pool reuse
  run_all(queue, engine);
}

TEST(Engine, ChannelStatsAccountBusyTime) {
  const double t = 0.5;
  const int flits = 4;
  EventQueue queue;
  DoneCapture capture;
  WormholeEngine engine({t, t}, flits, queue, capture);
  capture.engine = &engine;
  engine.enable_channel_stats();
  engine.set_stats_window_start(0.0);
  engine.spawn(0, std::vector<GlobalChannelId>{0, 1}, 0.0);
  run_all(queue, engine);
  // Channel 0 held from 0 until the tail crosses it; channel 1 from t.
  EXPECT_EQ(engine.traversals(0), 1u);
  EXPECT_EQ(engine.traversals(1), 1u);
  EXPECT_GT(engine.busy_time(0), flits * t - 1e-9);
  EXPECT_GT(engine.busy_time(1), flits * t - 1e-9);
}

TEST(EngineDeathTest, PathLongerThanMessageIsRejected) {
  EventQueue queue;
  DoneCapture capture;
  WormholeEngine engine({1.0, 1.0, 1.0}, 2, queue, capture);
  const std::vector<GlobalChannelId> path = {0, 1, 2};
  EXPECT_DEATH((void)engine.spawn(0, path, 0.0), "precondition");
}

// ---------------------------------------------------------------------------
// Randomized differential test: engine vs flit-level reference.
// ---------------------------------------------------------------------------

class EngineVsReference : public ::testing::TestWithParam<int> {};
class EngineVsReferenceLongPath : public ::testing::TestWithParam<int> {};

/// Shared body: random scenario of `base_channels..base_channels +
/// channel_spread - 1` channels, `base_flits..` flits and paths up to
/// `len_cap` hops, run through both simulators and compared. The long-path
/// variant exercises the engine's generic drain fallback (paths longer
/// than every fixed-K kernel, see engine.cpp).
void random_scenario_matches_reference(int seed, int base_channels,
                                       int channel_spread, int base_flits,
                                       int flit_spread, int len_cap) {
  util::Rng rng(static_cast<std::uint64_t>(seed) * 7919 + 13);

  testsupport::RefScenario ref;
  const int n_channels =
      base_channels +
      static_cast<int>(rng.next_below(static_cast<std::uint64_t>(
          channel_spread)));
  const double services[] = {0.25, 0.5, 0.75, 1.0};
  for (int c = 0; c < n_channels; ++c)
    ref.channel_service.push_back(
        services[rng.next_below(4)]);
  ref.flits = base_flits + static_cast<int>(rng.next_below(
                               static_cast<std::uint64_t>(flit_spread)));

  const int n_worms = 2 + static_cast<int>(rng.next_below(10));
  const int max_len =
      std::max(1, std::min(ref.flits - 1, len_cap));  // avoid M==K clamp edge
  for (int w = 0; w < n_worms; ++w) {
    testsupport::RefWormSpec spec;
    spec.spawn_time = rng.next_double() * 12.0;
    const int len = 1 + static_cast<int>(rng.next_below(
                            static_cast<std::uint64_t>(max_len)));
    // Sample distinct channels, then sort: acquiring resources in a global
    // order keeps the wait-for graph acyclic, mirroring the deadlock
    // freedom that Up*/Down* routing provides in the real network.
    std::vector<int> pool(static_cast<std::size_t>(n_channels));
    for (int c = 0; c < n_channels; ++c) pool[static_cast<std::size_t>(c)] = c;
    for (int i = 0; i < len; ++i) {
      const auto pick =
          i + static_cast<int>(rng.next_below(
                  static_cast<std::uint64_t>(n_channels - i)));
      std::swap(pool[static_cast<std::size_t>(i)],
                pool[static_cast<std::size_t>(pick)]);
      spec.path.push_back(pool[static_cast<std::size_t>(i)]);
    }
    std::sort(spec.path.begin(), spec.path.end());
    ref.worms.push_back(std::move(spec));
  }

  // Run the reference.
  const auto expected = testsupport::simulate_flit_level(ref);

  // Run the engine on the identical scenario.
  EventQueue queue;
  DoneCapture capture;
  WormholeEngine engine(ref.channel_service, ref.flits, queue, capture);
  capture.engine = &engine;
  engine.enable_channel_stats();
  engine.set_stats_window_start(0.0);
  std::vector<std::pair<double, int>> order;  // spawn in time order
  for (std::size_t w = 0; w < ref.worms.size(); ++w)
    order.emplace_back(ref.worms[w].spawn_time, static_cast<int>(w));
  std::sort(order.begin(), order.end());
  // Interleave spawns with event processing so spawn times are honored.
  std::size_t next_spawn = 0;
  while (next_spawn < order.size() || !queue.empty()) {
    const bool spawn_first =
        next_spawn < order.size() &&
        (queue.empty() || order[next_spawn].first <= queue.top().time);
    if (spawn_first) {
      const auto [time, idx] = order[next_spawn++];
      std::vector<GlobalChannelId> path(
          ref.worms[static_cast<std::size_t>(idx)].path.begin(),
          ref.worms[static_cast<std::size_t>(idx)].path.end());
      engine.spawn(idx, path, time);
    } else {
      engine.handle(queue.pop());
    }
  }

  for (std::size_t w = 0; w < ref.worms.size(); ++w) {
    const auto msg = static_cast<std::int32_t>(w);
    ASSERT_TRUE(capture.done.count(msg)) << "worm " << w << " never finished";
    EXPECT_NEAR(capture.done[msg], expected.done_time[w], 1e-9)
        << "completion mismatch for worm " << w;
    const auto& acq = capture.acquires[msg];
    ASSERT_EQ(acq.size(), expected.acquire_time[w].size());
    for (std::size_t j = 0; j < acq.size(); ++j)
      EXPECT_NEAR(acq[j], expected.acquire_time[w][j], 1e-9)
          << "acquire mismatch worm " << w << " hop " << j;
  }

  // Busy-time accounting must agree with the reference's release times.
  const auto ref_busy = expected.busy_time(ref);
  for (int c = 0; c < n_channels; ++c)
    EXPECT_NEAR(engine.busy_time(c), ref_busy[static_cast<std::size_t>(c)],
                1e-9)
        << "busy-time mismatch on channel " << c;
}

TEST_P(EngineVsReference, RandomScenarioMatchesFlitReference) {
  random_scenario_matches_reference(GetParam(), /*base_channels=*/6,
                                    /*channel_spread=*/10, /*base_flits=*/2,
                                    /*flit_spread=*/9, /*len_cap=*/5);
}

TEST_P(EngineVsReferenceLongPath, RandomScenarioMatchesFlitReference) {
  // Paths of up to 24 hops overflow every fixed-K drain kernel (K <= 16),
  // forcing the software-pipelined generic fallback.
  random_scenario_matches_reference(GetParam() + 1000, /*base_channels=*/26,
                                    /*channel_spread=*/8, /*base_flits=*/25,
                                    /*flit_spread=*/12, /*len_cap=*/24);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineVsReference, ::testing::Range(0, 40));
INSTANTIATE_TEST_SUITE_P(Seeds, EngineVsReferenceLongPath,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace mcs::sim
