// Structural invariants of the explicit m-port n-tree construction.
#include "topology/fat_tree.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "topology/routing.hpp"

namespace mcs::topo {
namespace {

class FatTreeProperty : public ::testing::TestWithParam<TreeShape> {
 protected:
  FatTree tree_{GetParam()};
};

TEST_P(FatTreeProperty, CountsMatchEquations1And2) {
  const TreeShape shape = GetParam();
  EXPECT_EQ(tree_.endpoint_count(), shape.node_count());
  EXPECT_EQ(tree_.switch_count(), shape.switch_count());
  // Channels: 2 per endpoint (inj+ej) and 2 per inter-switch link; there
  // are (n-1) * N links between switch levels plus N endpoint attachments.
  const std::int64_t n = shape.node_count();
  const std::int64_t expected = 2 * n + 2 * (shape.n - 1) * n;
  EXPECT_EQ(static_cast<std::int64_t>(tree_.channel_count()), expected);
}

TEST_P(FatTreeProperty, PortBudgetsRespected) {
  const TreeShape shape = GetParam();
  const int kk = shape.k();
  // Count channel endpoints per switch and direction.
  std::vector<int> out_ports(static_cast<std::size_t>(tree_.switch_count()));
  std::vector<int> in_ports(static_cast<std::size_t>(tree_.switch_count()));
  for (std::size_t c = 0; c < tree_.channel_count(); ++c) {
    const Channel& ch = tree_.channel(static_cast<ChannelId>(c));
    if (ch.src_switch >= 0)
      ++out_ports[static_cast<std::size_t>(ch.src_switch)];
    if (ch.dst_switch >= 0)
      ++in_ports[static_cast<std::size_t>(ch.dst_switch)];
  }
  for (SwitchId s = 0; s < tree_.switch_count(); ++s) {
    const int level = tree_.switch_level(s);
    // Every switch uses m ports; each port is one in + one out channel.
    int expected = 2 * kk;
    if (level == shape.n) expected = 2 * kk;  // root: all m ports downward
    EXPECT_EQ(out_ports[static_cast<std::size_t>(s)], expected)
        << "switch " << s << " level " << level;
    EXPECT_EQ(in_ports[static_cast<std::size_t>(s)], expected);
  }
}

TEST_P(FatTreeProperty, UpDownChannelsAreConsistentInverses) {
  const TreeShape shape = GetParam();
  const int kk = shape.k();
  for (SwitchId s = 0; s < tree_.switch_count(); ++s) {
    const int level = tree_.switch_level(s);
    if (level == shape.n) continue;
    for (int u = 0; u < kk; ++u) {
      const ChannelId up = tree_.up_channel(s, u);
      const Channel& up_ch = tree_.channel(up);
      ASSERT_EQ(up_ch.src_switch, s);
      const SwitchId parent = up_ch.dst_switch;
      EXPECT_EQ(tree_.switch_level(parent), level + 1);
      // The parent must own a down channel back to s.
      bool found = false;
      for (int c = 0; c < tree_.down_port_count(parent); ++c) {
        const Channel& down_ch = tree_.channel(tree_.down_channel(parent, c));
        if (down_ch.dst_switch == s) found = true;
      }
      EXPECT_TRUE(found) << "no down path back from parent of switch " << s;
    }
  }
}

TEST_P(FatTreeProperty, EveryEndpointHasWorkingAttachment) {
  for (EndpointId e = 0; e < tree_.endpoint_count(); ++e) {
    const Channel& inj = tree_.channel(tree_.injection_channel(e));
    const Channel& ej = tree_.channel(tree_.ejection_channel(e));
    EXPECT_EQ(inj.kind, ChannelKind::kInjection);
    EXPECT_EQ(ej.kind, ChannelKind::kEjection);
    EXPECT_EQ(inj.endpoint, e);
    EXPECT_EQ(ej.endpoint, e);
    EXPECT_EQ(inj.dst_switch, tree_.leaf_switch_of(e));
    EXPECT_EQ(ej.src_switch, tree_.leaf_switch_of(e));
    EXPECT_EQ(tree_.switch_level(tree_.leaf_switch_of(e)), 1);
  }
}

TEST_P(FatTreeProperty, DigitsReconstructEndpointIds) {
  const TreeShape shape = GetParam();
  for (EndpointId e = 0; e < tree_.endpoint_count(); ++e) {
    std::int64_t id = tree_.digit(e, 1);  // mixed radix: p1 * k^(n-1) + ...
    for (int pos = 2; pos <= shape.n; ++pos)
      id = id * shape.k() + tree_.digit(e, pos);
    EXPECT_EQ(id, e);
  }
}

TEST_P(FatTreeProperty, HopCensusMatchesEq4) {
  const TreeShape shape = GetParam();
  const auto census = hop_census(tree_);
  const auto analytic = shape.hop_distribution();
  ASSERT_EQ(census.size(), analytic.size());
  for (std::size_t j = 0; j < census.size(); ++j)
    EXPECT_NEAR(census[j], analytic[j], 1e-12)
        << "hop level " << (j + 1) << " disagrees with Eq. (4)";
}

TEST_P(FatTreeProperty, ExtraEndpointAttachesToLeafZero) {
  FatTree tree(GetParam());
  const EndpointId conc = tree.attach_extra_endpoint();
  EXPECT_EQ(conc, tree.endpoint_count());
  EXPECT_EQ(tree.extra_endpoint_count(), 1);
  EXPECT_EQ(tree.total_endpoints(), tree.endpoint_count() + 1);
  EXPECT_EQ(tree.leaf_switch_of(conc), tree.leaf_switch_of(0));
  const Channel& inj = tree.channel(tree.injection_channel(conc));
  EXPECT_EQ(inj.endpoint, conc);
  // Routing to/from the concentrator works from every node.
  for (EndpointId e = 0; e < tree.endpoint_count(); ++e) {
    const auto to = tree.route(e, conc);
    const auto from = tree.route(conc, e);
    EXPECT_TRUE(is_valid_path(tree, e, conc, to));
    EXPECT_TRUE(is_valid_path(tree, conc, e, from));
    EXPECT_EQ(to.size(), from.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FatTreeProperty,
    ::testing::Values(TreeShape{2, 1}, TreeShape{2, 3}, TreeShape{4, 1},
                      TreeShape{4, 2}, TreeShape{4, 3}, TreeShape{4, 4},
                      TreeShape{6, 2}, TreeShape{8, 1}, TreeShape{8, 2},
                      TreeShape{8, 3}),
    [](const ::testing::TestParamInfo<TreeShape>& param_info) {
      return "m" + std::to_string(param_info.param.m) + "n" +
             std::to_string(param_info.param.n);
    });

TEST(FatTree, KnownSmallTopologyLayout) {
  // m=4 (k=2), n=2: 8 nodes, 2+4 leaf/root... (2n-1)k^(n-1) = 6 switches:
  // 4 leaves (level 1) + 2 roots (level 2).
  const FatTree tree(TreeShape{4, 2});
  EXPECT_EQ(tree.endpoint_count(), 8);
  EXPECT_EQ(tree.switch_count(), 6);
  int leaves = 0, roots = 0;
  for (SwitchId s = 0; s < tree.switch_count(); ++s)
    (tree.switch_level(s) == 1 ? leaves : roots)++;
  EXPECT_EQ(leaves, 4);
  EXPECT_EQ(roots, 2);
  // Node 5 has digits (2, 1): leaf group 2, port 1.
  EXPECT_EQ(tree.digit(5, 1), 2);
  EXPECT_EQ(tree.digit(5, 2), 1);
}

TEST(FatTree, NcaLevelsOnKnownPairs) {
  const FatTree tree(TreeShape{4, 2});  // 8 nodes, digits (p1 in 0..3, p2 in 0..1)
  EXPECT_EQ(tree.nca_level(0, 1), 1);   // same leaf
  EXPECT_EQ(tree.nca_level(0, 2), 2);   // different leaf group
  EXPECT_EQ(tree.nca_level(6, 7), 1);
  EXPECT_EQ(tree.nca_level(0, 7), 2);
}

}  // namespace
}  // namespace mcs::topo
