// Parallel-mode determinism suite (DESIGN.md §16).
//
// The conservative per-cluster simulator carries TWO contracts, and this
// file pins both:
//  1. Worker-count invariance: `SimConfig::parallel` = 1, 2 and 8 produce
//     BIT-IDENTICAL results (the partition layout and mailbox merge order
//     are config-determined, never machine-determined). One fingerprint
//     is additionally pinned as a golden string so the parallel stream
//     itself cannot drift silently.
//  2. Fidelity: on a single-cluster system the parallel mode degenerates
//     to one partition processing the global (time, seq) order, so its
//     latency statistics match the sequential simulator bit-exactly; on
//     multi-cluster systems the sharded warmup quotas legitimately select
//     a different measured set, so the comparison is statistical.
//
// The conservative-horizon property itself (no boundary message may carry
// a timestamp below the receiver's processed horizon) is enforced at
// runtime by EventQueue's push contract (time >= last pop time), which
// every mailbox delivery crosses — all runs below double as property
// checks of the lookahead bound.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "obs/anatomy.hpp"
#include "obs/probe.hpp"
#include "obs/trace.hpp"
#include "sim/parallel_sim.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"

namespace mcs::sim {
namespace {

std::string hex(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

/// Latency-statistics fingerprint: every field here must be bit-stable
/// across worker counts. end_time/events are included — the round loop
/// and its early-out guards are deterministic too.
std::string fingerprint(const SimResult& r) {
  std::string s;
  s += "mean=" + hex(r.latency.mean);
  s += " p50=" + hex(r.latency_p50);
  s += " p95=" + hex(r.latency_p95);
  s += " p99=" + hex(r.latency_p99);
  s += " int=" + hex(r.internal_latency.mean);
  s += " ext=" + hex(r.external_latency.mean);
  s += " srcw=" + hex(r.mean_source_wait);
  s += " concw=" + hex(r.mean_conc_wait);
  s += " end=" + hex(r.end_time);
  s += " events=" + std::to_string(r.events_processed);
  s += " gen=" + std::to_string(r.generated);
  s += " nint=" + std::to_string(r.measured_internal);
  s += " next=" + std::to_string(r.measured_external);
  return s;
}

topo::SystemConfig tree_system() {
  topo::SystemConfig cfg;
  cfg.m = 4;
  cfg.cluster_heights = {2, 2, 3};
  return cfg;
}

topo::SystemConfig torus_system() {
  topo::SystemConfig cfg = topo::SystemConfig::homogeneous(4, 2, 6);
  cfg.icn2.kind = topo::Icn2Kind::kTorus;
  cfg.icn2.torus_wrap = true;
  return cfg;
}

SimConfig base_config() {
  SimConfig cfg;
  cfg.seed = 20060814;
  cfg.warmup_messages = 200;
  cfg.measured_messages = 2000;
  cfg.batch_size = 100;
  return cfg;
}

SimResult run_parallel(const topo::SystemConfig& system, SimConfig cfg,
                       int workers) {
  topo::MultiClusterTopology topology(system);
  model::NetworkParams params;  // M = 32 flits, paper timing constants
  cfg.parallel = workers;
  return ParallelSimulator(topology, params, 2e-4, std::move(cfg)).run();
}

void expect_worker_invariant(const topo::SystemConfig& system,
                             const SimConfig& cfg, const char* label) {
  const std::string one = fingerprint(run_parallel(system, cfg, 1));
  const std::string two = fingerprint(run_parallel(system, cfg, 2));
  const std::string eight = fingerprint(run_parallel(system, cfg, 8));
  EXPECT_EQ(one, two) << label;
  EXPECT_EQ(one, eight) << label;
}

TEST(ParallelSim, WorkerCountInvarianceWormhole) {
  expect_worker_invariant(tree_system(), base_config(), "wormhole tree");
  expect_worker_invariant(torus_system(), base_config(), "wormhole torus");
}

TEST(ParallelSim, WorkerCountInvarianceStoreAndForward) {
  SimConfig cfg = base_config();
  cfg.flow_control = FlowControl::kStoreAndForward;
  expect_worker_invariant(tree_system(), cfg, "snf tree");
  expect_worker_invariant(torus_system(), cfg, "snf torus");
}

TEST(ParallelSim, WorkerCountInvarianceCutThrough) {
  SimConfig cfg = base_config();
  cfg.relay_mode = RelayMode::kCutThrough;
  expect_worker_invariant(tree_system(), cfg, "cut-through tree");
}

TEST(ParallelSim, WorkerCountInvarianceHeteroLoad) {
  topo::SystemConfig system = tree_system();
  system.load_scale = {2.5, 0.5, 0.5};
  expect_worker_invariant(system, base_config(), "hetero load tree");
}

TEST(ParallelSim, PinnedGolden) {
  // The parallel mode's own golden stream (distinct from the sequential
  // fingerprints in sim_golden_test.cpp by design: sharded seq numbering
  // and warmup quotas). Regenerate from the failure output if a change
  // intentionally alters parallel semantics, and say so in the PR.
  EXPECT_EQ(fingerprint(run_parallel(tree_system(), base_config(), 2)),
            "mean=0x1.0ce5d61b4916fp+5 p50=0x1.284dd2f1a2p+5 "
            "p95=0x1.6da9fbe776p+5 p99=0x1.a984401af0c8fp+5 "
            "int=0x1.1afa62f5959c9p+4 ext=0x1.51cdf657433b7p+5 "
            "srcw=0x1.a3ef073c3a3dbp-6 concw=0x0p+0 "
            "end=0x1.522da30a80d13p+18 events=46420 gen=2297 "
            "nint=702 next=1298");
}

TEST(ParallelSim, SmallSystemOracleAndConservation) {
  // Smallest constructible system (2 clusters): almost every worm crosses
  // a partition boundary, so the mailbox/horizon machinery carries most
  // of the traffic. The sequential simulator is the oracle — the sharded
  // warmup quotas select a different measured set, so the latency
  // comparison is statistical, while the conservation invariants (every
  // measured message delivered exactly once, per-cluster counts summing
  // to the quota) must hold exactly.
  topo::SystemConfig system = topo::SystemConfig::homogeneous(2, 1, 2);
  topo::MultiClusterTopology topology(system);
  model::NetworkParams params;
  const SimResult seq =
      Simulator(topology, params, 2e-4, base_config()).run();
  SimConfig pcfg = base_config();
  pcfg.parallel = 4;
  const SimResult par =
      ParallelSimulator(topology, params, 2e-4, std::move(pcfg)).run();

  ASSERT_FALSE(par.saturated);
  EXPECT_EQ(par.delivered_measured, 2000);
  EXPECT_EQ(par.measured_internal + par.measured_external, 2000);
  std::int64_t per_cluster_total = 0;
  for (const std::int64_t c : par.per_cluster_count) per_cluster_total += c;
  EXPECT_EQ(per_cluster_total, 2000);
  EXPECT_GE(par.generated, par.delivered_measured);
  EXPECT_NEAR(par.latency.mean, seq.latency.mean, 0.15 * seq.latency.mean);
}

TEST(ParallelSim, StatisticallyMatchesSequential) {
  // Multi-cluster: the sharded quotas select a different (equally valid)
  // measured set, so the oracle is statistical, not bitwise.
  topo::MultiClusterTopology topology(tree_system());
  model::NetworkParams params;
  const SimResult seq =
      Simulator(topology, params, 2e-4, base_config()).run();
  const SimResult par = run_parallel(tree_system(), base_config(), 2);
  ASSERT_EQ(seq.delivered_measured, 2000);
  ASSERT_EQ(par.delivered_measured, 2000);
  EXPECT_NEAR(par.latency.mean, seq.latency.mean, 0.15 * seq.latency.mean);
  EXPECT_NEAR(par.external_latency.mean, seq.external_latency.mean,
              0.15 * seq.external_latency.mean);
}

TEST(ParallelSim, DispatchRunsSequentialWhenParallelZero) {
  topo::MultiClusterTopology topology(tree_system());
  model::NetworkParams params;
  const SimResult direct =
      Simulator(topology, params, 2e-4, base_config()).run();
  const SimResult dispatched =
      run_simulation(topology, params, 2e-4, base_config());
  EXPECT_EQ(fingerprint(direct), fingerprint(dispatched));
}

TEST(ParallelSim, ProbesAttachWithoutPerturbingResults) {
  obs::ProbeSeries probes;
  SimConfig cfg = base_config();
  cfg.probes = &probes;
  const SimResult with = run_parallel(tree_system(), cfg, 2);
  const SimResult without =
      run_parallel(tree_system(), base_config(), 2);
  EXPECT_EQ(fingerprint(with), fingerprint(without));
  ASSERT_FALSE(probes.samples().empty());
  EXPECT_TRUE(with.has_last_probe);
  double prev = -1.0;
  for (const obs::ProbeSample& s : probes.samples()) {
    EXPECT_GT(s.time, prev);
    prev = s.time;
  }
  EXPECT_EQ(probes.samples().back().delivered_measured, 2000);
}

TEST(ParallelSim, ChannelStatsAggregateAcrossPartitions) {
  SimConfig cfg = base_config();
  cfg.collect_channel_stats = true;
  const SimResult one = run_parallel(tree_system(), cfg, 1);
  const SimResult four = run_parallel(tree_system(), cfg, 4);
  ASSERT_FALSE(one.channel_classes.empty());
  ASSERT_EQ(one.channel_classes.size(), four.channel_classes.size());
  for (std::size_t i = 0; i < one.channel_classes.size(); ++i) {
    EXPECT_EQ(hex(one.channel_classes[i].mean_utilization),
              hex(four.channel_classes[i].mean_utilization));
    EXPECT_EQ(hex(one.channel_classes[i].mean_message_rate),
              hex(four.channel_classes[i].mean_message_rate));
  }
}

TEST(ParallelSim, RejectsTraceAndAnatomyObservers) {
  topo::MultiClusterTopology topology(tree_system());
  model::NetworkParams params;
  {
    obs::TraceBuffer trace;
    SimConfig cfg = base_config();
    cfg.parallel = 2;
    cfg.trace = &trace;
    EXPECT_THROW(ParallelSimulator(topology, params, 2e-4, std::move(cfg)),
                 ConfigError);
  }
  {
    obs::LatencyAnatomy anatomy;
    SimConfig cfg = base_config();
    cfg.parallel = 2;
    cfg.anatomy = &anatomy;
    EXPECT_THROW(ParallelSimulator(topology, params, 2e-4, std::move(cfg)),
                 ConfigError);
  }
}

TEST(ParallelSim, WormholeRequiresSpanningMargin) {
  // The sequential engine accepts M == longest path; the parallel mode
  // needs one more flit so remotely held channels always release with
  // positive lookahead. A config on the boundary must construct
  // sequentially and throw in parallel.
  topo::MultiClusterTopology topology(tree_system());
  model::NetworkParams params;
  params.message_flits = 6;  // == longest path of the {2,2,3} tree system
  Simulator ok(topology, params, 2e-4, base_config());  // must not throw
  SimConfig cfg = base_config();
  cfg.parallel = 2;
  EXPECT_THROW(ParallelSimulator(topology, params, 2e-4, std::move(cfg)),
               ConfigError);
}

TEST(ParallelSim, SaturationCapsStopTheRun) {
  SimConfig cfg = base_config();
  cfg.max_events = 5'000;  // far below the ~44k a full run needs
  const SimResult one = run_parallel(tree_system(), cfg, 1);
  const SimResult eight = run_parallel(tree_system(), cfg, 8);
  EXPECT_TRUE(one.saturated);
  EXPECT_EQ(one.saturation_cause, "events");
  EXPECT_EQ(fingerprint(one), fingerprint(eight));
}

}  // namespace
}  // namespace mcs::sim
