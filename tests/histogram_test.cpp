#include "util/histogram.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace mcs::util {
namespace {

// Random sample streams spanning many decades, the regime the anatomy
// histograms see (waits from ~1e-3 up to saturation-scale ~1e4).
std::vector<double> random_stream(std::uint64_t seed, std::size_t n,
                                  double zero_fraction) {
  Rng rng(seed);
  std::vector<double> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.next_double() < zero_fraction) {
      xs.push_back(0.0);
    } else {
      // log-uniform over [2^-20, 2^20)
      const double e = -20.0 + 40.0 * rng.next_double();
      xs.push_back(std::exp2(e));
    }
  }
  return xs;
}

LogHistogram fill(const std::vector<double>& xs) {
  LogHistogram h;
  for (double x : xs) h.add(x);
  return h;
}

TEST(LogHistogram, BucketBoundsInvariant) {
  // Every positive value lands in the bucket whose [lower, upper) range
  // contains it; bucket bounds are consistent and doubling.
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double e = -63.0 + 126.0 * rng.next_double();
    const double v = std::exp2(e);
    const int b = LogHistogram::bucket_of(v);
    ASSERT_GE(b, 0);
    ASSERT_LT(b, LogHistogram::kBuckets);
    EXPECT_GE(v, LogHistogram::bucket_lower(b));
    EXPECT_LT(v, LogHistogram::bucket_upper(b));
  }
  for (int b = 0; b + 1 < LogHistogram::kBuckets; ++b) {
    EXPECT_DOUBLE_EQ(LogHistogram::bucket_upper(b),
                     LogHistogram::bucket_lower(b + 1));
    EXPECT_DOUBLE_EQ(LogHistogram::bucket_upper(b),
                     2.0 * LogHistogram::bucket_lower(b));
  }
}

TEST(LogHistogram, OutOfRangeValuesClampIntoEdgeBuckets) {
  EXPECT_EQ(LogHistogram::bucket_of(1e-300), 0);
  EXPECT_EQ(LogHistogram::bucket_of(1e300), LogHistogram::kBuckets - 1);
}

TEST(LogHistogram, CountsZerosAndNegativesWithoutDropping) {
  LogHistogram h;
  h.add(0.0);
  h.add(-3.0);  // caller bug: folded into zeros, never dropped
  h.add(2.5);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.zeros(), 2u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 2.5);
  EXPECT_DOUBLE_EQ(h.sum(), 2.5);
}

TEST(LogHistogram, EmptyHistogramIsInert) {
  const LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_TRUE(h.nonempty_buckets().empty());
}

TEST(LogHistogram, MergeIsAssociativeAndCommutativeOnCounts) {
  const auto a = fill(random_stream(1, 2'000, 0.1));
  const auto b = fill(random_stream(2, 3'000, 0.0));
  const auto c = fill(random_stream(3, 1'000, 0.5));

  LogHistogram ab_c = a;
  ab_c.merge(b);
  ab_c.merge(c);

  LogHistogram bc = b;
  bc.merge(c);
  LogHistogram a_bc = a;
  a_bc.merge(bc);

  LogHistogram cba = c;
  cba.merge(b);
  cba.merge(a);

  for (const LogHistogram* m : {&a_bc, &cba}) {
    EXPECT_EQ(ab_c.count(), m->count());
    EXPECT_EQ(ab_c.zeros(), m->zeros());
    EXPECT_DOUBLE_EQ(ab_c.min(), m->min());
    EXPECT_DOUBLE_EQ(ab_c.max(), m->max());
    for (int bkt = 0; bkt < LogHistogram::kBuckets; ++bkt)
      EXPECT_EQ(ab_c.bucket_count(bkt), m->bucket_count(bkt));
    // Counts (and therefore quantiles) are exactly grouping-independent.
    for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0})
      EXPECT_DOUBLE_EQ(ab_c.quantile(q), m->quantile(q));
  }
  // sum() is a double accumulation: grouping-independent only up to
  // rounding, so compare with a relative tolerance.
  EXPECT_NEAR(ab_c.sum(), a_bc.sum(), 1e-9 * std::abs(ab_c.sum()));
  EXPECT_NEAR(ab_c.sum(), cba.sum(), 1e-9 * std::abs(ab_c.sum()));
}

TEST(LogHistogram, MergeOfEmptyIsIdentity) {
  const auto a = fill(random_stream(4, 500, 0.2));
  LogHistogram merged = a;
  merged.merge(LogHistogram{});
  EXPECT_EQ(merged.count(), a.count());
  EXPECT_DOUBLE_EQ(merged.sum(), a.sum());
  EXPECT_DOUBLE_EQ(merged.min(), a.min());
  EXPECT_DOUBLE_EQ(merged.max(), a.max());

  LogHistogram onto_empty;
  onto_empty.merge(a);
  EXPECT_EQ(onto_empty.count(), a.count());
  EXPECT_DOUBLE_EQ(onto_empty.min(), a.min());
  EXPECT_DOUBLE_EQ(onto_empty.max(), a.max());
}

TEST(LogHistogram, QuantileWithinOneBucketWidthOfExact) {
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    auto xs = random_stream(seed, 5'000, 0.05);
    const auto h = fill(xs);
    // Exact reference: sort (negatives were folded to zero by add()).
    for (double& x : xs) x = std::max(x, 0.0);
    std::sort(xs.begin(), xs.end());
    for (double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
      const auto rank = static_cast<std::size_t>(std::max(
          1.0, std::ceil(q * static_cast<double>(xs.size()))));
      const double exact = xs[rank - 1];
      const double approx = h.quantile(q);
      if (exact == 0.0) {
        EXPECT_DOUBLE_EQ(approx, 0.0);
        continue;
      }
      // Error bound: the exact order statistic and the estimate live in
      // the same bucket, so they differ by at most one bucket width
      // (upper - lower == lower, i.e. a factor of 2).
      const int b = LogHistogram::bucket_of(exact);
      const double width =
          LogHistogram::bucket_upper(b) - LogHistogram::bucket_lower(b);
      EXPECT_NEAR(approx, exact, width)
          << "seed=" << seed << " q=" << q;
    }
  }
}

TEST(LogHistogram, QuantileEdgesMatchMinAndMax) {
  const auto xs = random_stream(21, 1'000, 0.0);
  const auto h = fill(xs);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), h.max());
  // q=0 clamps to rank 1 = the smallest sample's bucket, clamped to min.
  EXPECT_GE(h.quantile(0.0), h.min());
  EXPECT_LE(h.quantile(0.0),
            LogHistogram::bucket_upper(LogHistogram::bucket_of(h.min())));
}

TEST(LogHistogram, DeterministicAcrossPartitionings) {
  // The sweep's contract: per-replication histograms merged in a FIXED
  // order give bit-identical results no matter how many worker threads
  // produced them. Simulate thread counts as partition widths and merge
  // partitions in sweep (index) order.
  const auto xs = random_stream(31, 4'096, 0.1);
  std::vector<double> reference_quantiles;
  std::vector<std::uint64_t> reference_counts;
  double reference_sum = 0.0;
  for (std::size_t parts : {1u, 2u, 3u, 7u, 16u}) {
    std::vector<LogHistogram> shards(parts);
    for (std::size_t i = 0; i < xs.size(); ++i)
      shards[i % parts].add(xs[i]);
    LogHistogram merged;
    for (const LogHistogram& s : shards) merged.merge(s);

    std::vector<double> quantiles;
    for (double q : {0.1, 0.5, 0.95, 0.99})
      quantiles.push_back(merged.quantile(q));
    std::vector<std::uint64_t> counts;
    for (int b : merged.nonempty_buckets())
      counts.push_back(merged.bucket_count(b));

    if (parts == 1) {
      reference_quantiles = quantiles;
      reference_counts = counts;
      reference_sum = merged.sum();
      continue;
    }
    EXPECT_EQ(counts, reference_counts) << parts << " partitions";
    for (std::size_t i = 0; i < quantiles.size(); ++i)
      EXPECT_DOUBLE_EQ(quantiles[i], reference_quantiles[i])
          << parts << " partitions";
    // Quantiles/counts are exact; only sum() depends on add/merge order,
    // and even it must stay within rounding noise.
    EXPECT_NEAR(merged.sum(), reference_sum,
                1e-9 * std::abs(reference_sum));
  }
}

TEST(LogHistogram, NonemptyBucketsAreSortedAndComplete) {
  const auto h = fill(random_stream(41, 2'000, 0.3));
  const std::vector<int> buckets = h.nonempty_buckets();
  EXPECT_TRUE(std::is_sorted(buckets.begin(), buckets.end()));
  std::uint64_t total = h.zeros();
  for (int b : buckets) {
    EXPECT_GT(h.bucket_count(b), 0u);
    total += h.bucket_count(b);
  }
  EXPECT_EQ(total, h.count());
}

}  // namespace
}  // namespace mcs::util
