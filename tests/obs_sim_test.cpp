// Determinism contract of the flight recorder (DESIGN.md §12): attaching
// probes and tracing to a Simulator must leave every result bit-identical
// to the uninstrumented run — observation never consumes RNG, never
// pushes or reorders events. These tests run the PR 3 golden
// configurations twice (bare vs fully instrumented) and compare hexfloat
// fingerprints, re-pin one golden string verbatim under instrumentation,
// and then assert the semantic invariants of what was captured: monotone
// probe times, utilizations in [0, 1], and correctly nested trace spans
// (msg ⊇ leg ⊇ queue_wait/hops) after a JSON round trip.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "support/json_mini.hpp"

namespace mcs::sim {
namespace {

std::string hex(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

/// Same field set as sim_golden_test.cpp's fingerprint: any divergence
/// between a bare and an instrumented run must show up here.
std::string fingerprint(const SimResult& r) {
  std::string s;
  s += "mean=" + hex(r.latency.mean);
  s += " p50=" + hex(r.latency_p50);
  s += " p95=" + hex(r.latency_p95);
  s += " p99=" + hex(r.latency_p99);
  s += " int=" + hex(r.internal_latency.mean);
  s += " ext=" + hex(r.external_latency.mean);
  s += " srcw=" + hex(r.mean_source_wait);
  s += " end=" + hex(r.end_time);
  s += " events=" + std::to_string(r.events_processed);
  s += " gen=" + std::to_string(r.generated);
  s += " nint=" + std::to_string(r.measured_internal);
  s += " next=" + std::to_string(r.measured_external);
  return s;
}

SimConfig golden_config() {
  SimConfig cfg;
  cfg.seed = 20060814;
  cfg.warmup_messages = 200;
  cfg.measured_messages = 2000;
  cfg.batch_size = 100;
  return cfg;
}

topo::SystemConfig tree_system() {
  topo::SystemConfig cfg;
  cfg.m = 4;
  cfg.cluster_heights = {2, 2, 3};
  return cfg;
}

topo::SystemConfig torus_system(bool wrap) {
  topo::SystemConfig cfg = topo::SystemConfig::homogeneous(4, 2, 6);
  cfg.icn2.kind = topo::Icn2Kind::kTorus;
  cfg.icn2.torus_wrap = wrap;
  return cfg;
}

SimResult run(const topo::SystemConfig& system, SimConfig cfg) {
  topo::MultiClusterTopology topology(system);
  model::NetworkParams params;
  Simulator sim(topology, params, 2e-4, std::move(cfg));
  return sim.run();
}

/// Run bare, then instrumented (probes + traces + latency anatomy attached
/// to a copy of the same config); EXPECT identical fingerprints and return
/// the capture.
struct InstrumentedRun {
  SimResult bare;
  SimResult observed;
  obs::ProbeSeries probes;
  obs::TraceBuffer trace;
  obs::LatencyAnatomy anatomy;
};

InstrumentedRun run_both(const topo::SystemConfig& system,
                         const SimConfig& cfg) {
  InstrumentedRun r;
  r.bare = run(system, cfg);

  SimConfig observed_cfg = cfg;
  obs::TraceConfig trace_cfg;
  trace_cfg.sample_every = 4;  // dense enough for span assertions
  r.trace = obs::TraceBuffer(trace_cfg);
  observed_cfg.probes = &r.probes;
  observed_cfg.trace = &r.trace;
  observed_cfg.anatomy = &r.anatomy;
  r.observed = run(system, observed_cfg);

  EXPECT_EQ(fingerprint(r.bare), fingerprint(r.observed));
  // The anatomy accounts every measured message exhaustively; its
  // per-leg components must re-add to each end-to-end latency up to
  // re-association rounding (DESIGN.md §13 conservation contract).
  EXPECT_TRUE(r.anatomy.finalized());
  EXPECT_EQ(r.anatomy.messages(),
            static_cast<std::uint64_t>(r.observed.measured_internal +
                                       r.observed.measured_external));
  EXPECT_LE(r.anatomy.max_relative_residual(), 16.0 * 2.220446049250313e-16);
  return r;
}

TEST(ObsContract, GoldenFingerprintUnchangedUnderInstrumentation) {
  // The exact PR 3 golden string for WormholeFatTree, reproduced with
  // probes AND tracing live: the flight recorder replays the seed's
  // simulation bit for bit.
  const InstrumentedRun r = run_both(tree_system(), golden_config());
  EXPECT_EQ(fingerprint(r.observed),
            "mean=0x1.0c86614b7fba3p+5 p50=0x1.284dd2f1a2p+5 "
            "p95=0x1.6da9fbe776p+5 p99=0x1.a984401af0c8fp+5 "
            "int=0x1.1a8ca7212bc6ep+4 ext=0x1.517f4110574acp+5 "
            "srcw=0x1.6106691841892p-6 end=0x1.41d917121a988p+18 "
            "events=44474 gen=2200 nint=703 next=1297");
}

TEST(ObsContract, AllGoldenVariantsBitIdenticalWithObservers) {
  run_both(torus_system(/*wrap=*/true), golden_config());

  SimConfig saf = golden_config();
  saf.flow_control = FlowControl::kStoreAndForward;
  run_both(tree_system(), saf);

  SimConfig cut = golden_config();
  cut.relay_mode = RelayMode::kCutThrough;
  run_both(tree_system(), cut);
}

TEST(ObsContract, ChannelStatsRunUnperturbedByProbes) {
  // Probes piggyback on the engine's channel busy counters, which a
  // collect_channel_stats run also reads: both consumers at once must
  // still be invisible, and the reported channel classes must match.
  SimConfig cfg = golden_config();
  cfg.collect_channel_stats = true;
  const InstrumentedRun r = run_both(tree_system(), cfg);
  ASSERT_EQ(r.bare.channel_classes.size(), r.observed.channel_classes.size());
  for (std::size_t i = 0; i < r.bare.channel_classes.size(); ++i) {
    EXPECT_EQ(r.bare.channel_classes[i].mean_utilization,
              r.observed.channel_classes[i].mean_utilization);
    EXPECT_EQ(r.bare.channel_classes[i].mean_message_rate,
              r.observed.channel_classes[i].mean_message_rate);
  }
}

TEST(ObsProbes, SeriesInvariantsAndFinalSample) {
  const InstrumentedRun r = run_both(tree_system(), golden_config());
  const std::vector<obs::ProbeSample>& samples = r.probes.samples();
  ASSERT_GE(samples.size(), 3u) << "probe series unexpectedly sparse";

  double prev_time = -1.0;
  std::uint64_t prev_events = 0;
  for (const obs::ProbeSample& p : samples) {
    EXPECT_GT(p.time, prev_time);
    EXPECT_GE(p.events, prev_events);
    prev_time = p.time;
    prev_events = p.events;
    EXPECT_GE(p.queue_depth, 0);
    EXPECT_GE(p.live_worms, 0);
    EXPECT_GE(p.waiting_worms, 0);
    EXPECT_GT(p.pool_rows, 0);
    EXPECT_GE(p.generated, 0);
    EXPECT_GE(p.delivered_measured, 0);
    EXPECT_LE(p.delivered_measured, p.generated);
    for (int k = 0; k < obs::kNetClasses; ++k) {
      EXPECT_GE(p.utilization[k], 0.0) << obs::net_class_name(k);
      EXPECT_LE(p.utilization[k], 1.0) << obs::net_class_name(k);
    }
    EXPECT_EQ(p.per_cluster_delivered.size(), 3u);  // tree_system clusters
  }

  // The final (forced) sample coincides with the end of the run and is
  // mirrored into SimResult::last_probe.
  EXPECT_EQ(samples.back().time, r.observed.end_time);
  EXPECT_EQ(samples.back().events, r.observed.events_processed);
  ASSERT_TRUE(r.observed.has_last_probe);
  EXPECT_EQ(r.observed.last_probe.time, samples.back().time);
  EXPECT_EQ(r.observed.last_probe.generated, r.observed.generated);
  EXPECT_FALSE(r.bare.has_last_probe);
}

TEST(ObsTrace, SpansNestCorrectlyAfterJsonRoundTrip) {
  const InstrumentedRun r = run_both(tree_system(), golden_config());
  ASSERT_FALSE(r.trace.events().empty());
  EXPECT_EQ(r.trace.dropped(), 0u);

  std::ostringstream out;
  obs::write_trace_json(out, {&r.trace});
  const testsupport::JsonValue doc = testsupport::parse_json(out.str());
  const auto& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());

  struct Span {
    std::string name;
    double ts = 0.0;
    double dur = 0.0;
  };
  std::map<int, std::vector<Span>> by_tid;
  for (const testsupport::JsonValue& e : events.array) {
    if (e.at("ph").string == "M") continue;  // process_name metadata
    EXPECT_EQ(e.at("ph").string, "X");
    EXPECT_GE(e.at("dur").number, 0.0);
    by_tid[static_cast<int>(e.at("tid").number)].push_back(
        Span{e.at("name").string, e.at("ts").number, e.at("dur").number});
  }

  // sample_every=4 over 2200 generated messages: hundreds of lanes.
  EXPECT_GT(by_tid.size(), 100u);

  // Times round-trip through precision-12 decimal JSON; at end_time scale
  // (~3e5 virtual time units) that leaves ~1e-6 of absolute slack.
  const double eps = 1e-5;
  for (const auto& [tid, spans] : by_tid) {
    // Exactly one msg span per traced message; it brackets every other
    // span in its lane.
    const Span* msg = nullptr;
    int legs = 0;
    int queue_waits = 0;
    for (const Span& s : spans) {
      if (s.name == "msg") {
        ASSERT_EQ(msg, nullptr) << "duplicate msg span in tid " << tid;
        msg = &s;
      } else if (s.name == "queue_wait") {
        ++queue_waits;
      } else if (s.name != "hop") {
        ++legs;  // icn1 / ecn1_out / icn2 / ecn1_in / cut_through
        EXPECT_TRUE(s.name == "icn1" || s.name == "ecn1_out" ||
                    s.name == "icn2" || s.name == "ecn1_in" ||
                    s.name == "cut_through")
            << s.name;
      }
    }
    ASSERT_NE(msg, nullptr) << "tid " << tid << " has no msg span";
    EXPECT_GE(legs, 1);
    EXPECT_EQ(queue_waits, legs);  // one source-queue wait per worm leg
    for (const Span& s : spans) {
      if (&s == msg) continue;
      EXPECT_GE(s.ts, msg->ts - eps) << s.name << " starts before its msg";
      EXPECT_LE(s.ts + s.dur, msg->ts + msg->dur + eps)
          << s.name << " ends after its msg";
    }
    // Every hop lies inside some leg span of the same lane.
    for (const Span& s : spans) {
      if (s.name != "hop") continue;
      bool inside = false;
      for (const Span& leg : spans) {
        if (leg.name == "msg" || leg.name == "hop" ||
            leg.name == "queue_wait")
          continue;
        if (s.ts >= leg.ts - eps && s.ts + s.dur <= leg.ts + leg.dur + eps) {
          inside = true;
          break;
        }
      }
      EXPECT_TRUE(inside) << "orphan hop span in tid " << tid;
    }
  }
}

TEST(ObsTrace, SamplingIsDeterministicByGenerationIndex) {
  // Two instrumented runs of the same config capture identical traces:
  // sampling depends only on the generation index, never on RNG or time.
  SimConfig cfg = golden_config();
  obs::TraceConfig trace_cfg;
  trace_cfg.sample_every = 8;

  obs::TraceBuffer a(trace_cfg), b(trace_cfg);
  SimConfig cfg_a = cfg, cfg_b = cfg;
  cfg_a.trace = &a;
  cfg_b.trace = &b;
  const SimResult ra = run(tree_system(), cfg_a);
  const SimResult rb = run(tree_system(), cfg_b);
  EXPECT_EQ(fingerprint(ra), fingerprint(rb));
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].name, b.events()[i].name);
    EXPECT_EQ(a.events()[i].tid, b.events()[i].tid);
    EXPECT_EQ(a.events()[i].ts, b.events()[i].ts);
    EXPECT_EQ(a.events()[i].dur, b.events()[i].dur);
    EXPECT_EQ(a.events()[i].args, b.events()[i].args);
  }
}

TEST(ObsAnatomy, ExhaustiveAccountingInvariants) {
  const InstrumentedRun r = run_both(tree_system(), golden_config());
  const obs::LatencyAnatomy& a = r.anatomy;

  // Every measured message, internal and external, is in the latency
  // histogram; internal ones never leave the cluster, so only segment 0.
  EXPECT_EQ(a.message_latency().count(), a.messages());
  EXPECT_EQ(a.internal_messages(),
            static_cast<std::uint64_t>(r.observed.measured_internal));
  EXPECT_EQ(a.segment(0).legs,
            static_cast<std::uint64_t>(r.observed.measured_internal));
  // External messages traverse ecn1_out -> icn2 -> ecn1_in, one leg each.
  for (int s : {1, 2, 3})
    EXPECT_EQ(a.segment(s).legs,
              static_cast<std::uint64_t>(r.observed.measured_external));
  EXPECT_EQ(a.segment(4).legs, 0u);  // no cut-through in this config

  for (int s = 0; s < obs::kSegments; ++s) {
    const obs::SegmentAnatomy& seg = a.segment(s);
    EXPECT_EQ(seg.wait.count(), seg.legs);
    EXPECT_EQ(seg.service.count(), seg.legs);
    EXPECT_GE(seg.wait_sum, 0.0);
    EXPECT_GE(seg.header_sum, 0.0);
    EXPECT_GE(seg.drain_sum, 0.0);
  }

  // Station view: utilizations are proper fractions and the ECN1 NIC
  // (station 1) serves the external outbound legs.
  for (int k = 0; k < obs::kStations; ++k) {
    const obs::StationMeasure st = a.station(k);
    EXPECT_GE(st.utilization, 0.0) << obs::station_name(k);
    EXPECT_LE(st.utilization, 1.0) << obs::station_name(k);
    EXPECT_GE(st.mean_wait, 0.0);
    EXPECT_GE(st.mean_service, 0.0);
  }
  EXPECT_EQ(a.station(1).legs,
            static_cast<std::uint64_t>(r.observed.measured_external));

  // Hot channels: at most top_channels entries, all ICN2, all traversed,
  // ranked by accumulated header residence (descending).
  const std::vector<obs::ChannelAnatomy>& hot = a.hot_channels();
  EXPECT_LE(hot.size(),
            static_cast<std::size_t>(a.config().top_channels));
  EXPECT_FALSE(hot.empty());
  for (std::size_t i = 0; i < hot.size(); ++i) {
    EXPECT_EQ(hot[i].net_class, 2);
    EXPECT_GT(hot[i].traversals, 0u);
    EXPECT_GE(hot[i].utilization, 0.0);
    EXPECT_LE(hot[i].utilization, 1.0);
    if (i > 0) {
      EXPECT_GE(hot[i - 1].residence_sum, hot[i].residence_sum);
    }
  }
}

TEST(ObsAnatomy, CutThroughLegsQueueAtEcn1Station) {
  SimConfig cut = golden_config();
  cut.relay_mode = RelayMode::kCutThrough;
  const InstrumentedRun r = run_both(tree_system(), cut);
  const obs::LatencyAnatomy& a = r.anatomy;
  // Under cut-through relay, external messages ride one merged worm
  // (segment 4) instead of the ecn1_out/icn2/ecn1_in chain...
  EXPECT_EQ(a.segment(4).legs,
            static_cast<std::uint64_t>(r.observed.measured_external));
  for (int s : {1, 2, 3}) EXPECT_EQ(a.segment(s).legs, 0u);
  // ...and the station view folds those legs into the ECN1 NIC.
  EXPECT_EQ(obs::station_of_segment(4), 1);
  EXPECT_EQ(a.station(1).legs,
            static_cast<std::uint64_t>(r.observed.measured_external));
}

TEST(ObsAnatomy, MatchesEngineChannelStats) {
  // rho-hat comes from the same engine busy counters that
  // collect_channel_stats reports, over the same window: the anatomy's
  // per-channel utilizations must reproduce the ICN2 class mean.
  SimConfig cfg = golden_config();
  cfg.collect_channel_stats = true;
  const InstrumentedRun r = run_both(tree_system(), cfg);
  ASSERT_FALSE(r.observed.channel_classes.empty());
  EXPECT_GT(r.anatomy.window(), 0.0);
}

}  // namespace
}  // namespace mcs::sim
