#!/usr/bin/env python3
"""Determinism contract linter (DESIGN.md §15).

Every subsystem in this repository rests on one invariant: bit-identical
results across thread counts, shards, cache hits, and resumes. The golden
fingerprint tests enforce that contract dynamically; this linter enforces
it statically, by flagging the handful of C++ constructs that historically
break bit-identity:

  unordered-iter              iteration over std::unordered_{map,set}
                              feeding output / accumulation / container
                              construction (hash order is run-dependent).
                              The ORDERED-REDUCTION idiom is recognized
                              and exempt: a loop that only gathers into
                              containers which are std::sort/stable_sort-ed
                              right after the loop (the mailbox-merge
                              pattern — gather, sort into a pinned total
                              order, then consume) imposes its own order,
                              so hash order cannot reach the output
  pointer-key                 pointer values as associative-container keys
                              (address order varies run to run under ASLR
                              and allocator state)
  raw-entropy                 std::rand / random_device / time(nullptr) /
                              argless clock reads outside obs::RunManifest
                              (ambient entropy leaking into results)
  threadpool-shared-mutation  non-atomic mutation of by-reference captured
                              state inside ThreadPool task lambdas without
                              a named synchronization object
  fp-unordered-reduction      floating-point += reduction in a loop over
                              an unordered container (FP addition is not
                              associative; hash order changes the sum)

Usage:
    determinism_lint.py [--list-rules] PATH...

PATH arguments are files or directories (searched recursively for
.cpp/.cc/.hpp/.h). Diagnostics are `file:line: [rule] message`.

Exit codes: 0 clean, 1 findings, 2 suppression/usage errors.

Suppressions: a finding is silenced by a comment on the same line or on
the line directly above:

    // mcs-lint: allow(<rule>) <justification>

The justification is mandatory and the rule name must be one of the rules
above — an unknown rule name or an empty justification is itself a fatal
error (exit 2), so suppressions cannot rot silently. Suppressions that no
longer match any finding are reported as warnings on stderr.

A second annotation form documents WHY a construct adjacent to a rule's
territory is contract-safe without requiring a matching finding (audit
trail for e.g. lookup-only unordered maps that are never iterated):

    // mcs-lint: note(<rule>) <justification>

note() rule names and justifications are validated exactly like allow().
"""

from __future__ import annotations

import argparse
import bisect
import os
import re
import sys
from dataclasses import dataclass, field

RULES = {
    "unordered-iter":
        "iteration over an unordered container feeds output/accumulation/"
        "container construction — hash order is run-dependent",
    "pointer-key":
        "pointer used as associative-container key — address order varies "
        "run to run",
    "raw-entropy":
        "ambient entropy (rand/random_device/time/clock) outside "
        "obs::RunManifest",
    "threadpool-shared-mutation":
        "non-atomic mutation of captured shared state inside a ThreadPool "
        "task lambda without a named synchronization object",
    "fp-unordered-reduction":
        "floating-point reduction over an unordered container — FP "
        "addition is not associative, hash order changes the sum",
}

# The one blanket exemption the contract itself defines: RunManifest is
# the designated home for wall-clock/host provenance, which never feeds
# results (ISSUE: "outside obs::RunManifest").
RAW_ENTROPY_EXEMPT_SUFFIXES = ("src/obs/manifest.cpp", "src/obs/manifest.hpp")

CXX_EXTENSIONS = (".cpp", ".cc", ".cxx", ".hpp", ".h", ".hh")

SUPPRESS_RE = re.compile(r"mcs-lint:\s*(allow|note)\(([^)]*)\)\s*(.*)")


@dataclass
class Finding:
    path: str
    line: int  # 1-based
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class Suppression:
    line: int  # 1-based line the comment sits on
    rule: str
    justification: str
    # "allow" silences a matching finding and warns when stale; "note"
    # documents WHY a construct near a rule's territory is contract-safe
    # (e.g. a lookup-only unordered map) without requiring a finding.
    kind: str = "allow"
    used: bool = False


@dataclass
class SourceFile:
    path: str
    raw: str
    code: str = ""  # comments/strings blanked, same offsets as raw
    line_starts: list = field(default_factory=list)
    suppressions: list = field(default_factory=list)
    errors: list = field(default_factory=list)  # fatal suppression errors

    def line_of(self, offset: int) -> int:
        return bisect.bisect_right(self.line_starts, offset)


def sanitize(src: SourceFile) -> None:
    """Blank comments, string and char literals (preserving offsets and
    newlines) and collect mcs-lint suppression comments."""
    raw = src.raw
    out = list(raw)
    n = len(raw)
    i = 0
    src.line_starts = [0]
    for k, ch in enumerate(raw):
        if ch == "\n":
            src.line_starts.append(k + 1)

    def blank(a: int, b: int) -> None:
        for k in range(a, b):
            if out[k] != "\n":
                out[k] = " "

    def record_comment(a: int, b: int) -> None:
        text = raw[a:b]
        m = SUPPRESS_RE.search(text)
        if not m:
            return
        kind = m.group(1)
        rule = m.group(2).strip()
        justification = m.group(3).strip().rstrip("*/").strip()
        line = src.line_of(a)
        if rule not in RULES:
            src.errors.append(Finding(
                src.path, line, "suppression-error",
                f"unknown rule '{rule}' in mcs-lint: {kind}(...) — known "
                f"rules: {', '.join(sorted(RULES))}"))
            return
        if not justification:
            src.errors.append(Finding(
                src.path, line, "suppression-error",
                f"{kind}({rule}) without a justification — every "
                "suppression must say why the construct is safe"))
            return
        src.suppressions.append(Suppression(line, rule, justification, kind))

    while i < n:
        ch = raw[i]
        nxt = raw[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            end = raw.find("\n", i)
            end = n if end < 0 else end
            record_comment(i, end)
            blank(i, end)
            i = end
        elif ch == "/" and nxt == "*":
            end = raw.find("*/", i + 2)
            end = n if end < 0 else end + 2
            record_comment(i, end)
            blank(i, end)
            i = end
        elif ch == "R" and nxt == '"':
            # Raw string literal R"delim(...)delim"
            m = re.match(r'R"([^(\s]*)\(', raw[i:])
            if m:
                closer = ")" + m.group(1) + '"'
                end = raw.find(closer, i + m.end())
                end = n if end < 0 else end + len(closer)
                blank(i + 1, end)
                i = end
            else:
                i += 1
        elif ch == '"':
            j = i + 1
            while j < n and raw[j] != '"':
                j += 2 if raw[j] == "\\" else 1
            blank(i + 1, min(j, n))
            i = min(j, n) + 1
        elif ch == "'":
            # C++14 digit separator (1'000, 0x5a70'5ea7), not a literal.
            prev = raw[i - 1] if i > 0 else ""
            if prev in "0123456789abcdefABCDEF" and nxt in \
                    "0123456789abcdefABCDEF":
                i += 1
                continue
            j = i + 1
            while j < n and raw[j] != "'":
                j += 2 if raw[j] == "\\" else 1
            blank(i + 1, min(j, n))
            i = min(j, n) + 1
        else:
            i += 1
    src.code = "".join(out)


def match_forward(code: str, start: int, open_ch: str, close_ch: str) -> int:
    """Offset one past the bracket closing code[start] (which must be
    open_ch), or len(code) when unbalanced."""
    depth = 0
    for k in range(start, len(code)):
        c = code[k]
        if c == open_ch:
            depth += 1
        elif c == close_ch:
            depth -= 1
            if depth == 0:
                return k + 1
    return len(code)


def split_top_level(text: str, sep: str = ",") -> list:
    parts, depth, cur = [], 0, []
    for c in text:
        if c in "<([{":
            depth += 1
        elif c in ">)]}":
            depth -= 1
        if c == sep and depth == 0:
            parts.append("".join(cur))
            cur = []
        else:
            cur.append(c)
    parts.append("".join(cur))
    return parts


UNORDERED_DECL_RE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\s*<")
ASSOC_DECL_RE = re.compile(
    r"\b(?:std\s*::\s*)?((?:unordered_)?(?:map|set|multimap|multiset))\s*<")
FP_DECL_RE = re.compile(r"\b(?:double|float)\b[\s&]*(\w+)\s*[=;{]")
FOR_RE = re.compile(r"\bfor\s*\(")
ACCUMULATE_RE = re.compile(r"\b(?:std\s*::\s*)?accumulate\s*\(")
DECL_NAME_AFTER_TEMPLATE_RE = re.compile(r"\s*&?\s*(\w+)\s*(?:[;={(,)]|$)")

RAW_ENTROPY_RE = re.compile(
    r"\bstd\s*::\s*rand\b|\brand\s*\(\s*\)|\bsrand\s*\(|\brandom_device\b"
    r"|\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)"
    r"|::\s*now\s*\(\s*\)|\bclock\s*\(\s*\)|\bgettimeofday\b|\bgetrusage\b")

SINK_RE = re.compile(
    r"<<|\.\s*(?:push_back|emplace_back|insert|emplace|append|push|"
    r"write)\s*\(|\bprintf\b|\bfprintf\b|\bsnprintf\b")
# Container-method sinks with their receiver, for the ordered-reduction
# exemption (stream/printf sinks can never be "sorted later").
METHOD_SINK_RE = re.compile(
    r"(\w+)\s*\.\s*(?:push_back|emplace_back|insert|emplace|append|push)"
    r"\s*\(")
STREAM_SINK_RE = re.compile(
    r"<<|\.\s*write\s*\(|\bprintf\b|\bfprintf\b|\bsnprintf\b")
# How far past the gather loop a sort may sit and still count as "right
# after" (the gather/sort/consume idiom keeps them adjacent; a sort half
# a file away proves nothing about this loop's sink).
SORT_WINDOW = 1500
# `x +=` inside an unordered loop: integer accumulation is associative
# and therefore order-free; FP and everything else (strings, auto, user
# types) is order-dependent and flagged.
INT_DECL_RE = re.compile(
    r"\b(?:unsigned|int|long|short|std\s*::\s*u?int\d+_t|u?int\d+_t|"
    r"std\s*::\s*size_t|size_t|std\s*::\s*ptrdiff_t)"
    r"(?:\s+(?:unsigned|int|long|short))*\s*&?\s*(\w+)\s*[=;{]")

POOL_CALL_RE = re.compile(r"\b(?:submit|parallel_for)\s*\(")
LAMBDA_RE = re.compile(r"\[")
LOCK_RE = re.compile(
    r"\block_guard\b|\bunique_lock\b|\bscoped_lock\b|\bshared_lock\b|"
    r"\.\s*lock\s*\(|\bmutex\b")
ATOMIC_OP_RE = re.compile(
    r"\bfetch_add\b|\bfetch_sub\b|\bcompare_exchange\w*\b|"
    r"\.\s*store\s*\(|\.\s*load\s*\(|\bmemory_order\b|\batomic\b")
MUTATION_RE = re.compile(
    r"(?:^|[;{}]\s*|\n\s*)([A-Za-z_]\w*)\s*"
    r"(=(?!=)|\+=|-=|\*=|/=|\.\s*(?:push_back|emplace_back|insert|emplace|"
    r"clear|resize|pop_back|erase|push|append)\s*\()")
LOCAL_DECL_RE = re.compile(
    r"(?:^|[;{}(]\s*|\n\s*)(?:const\s+)?"
    r"(?:auto|int|bool|char|float|double|long|unsigned|std\s*::\s*[\w:]+"
    r"(?:<[^;{}]*?>)?|[A-Z]\w*(?:\s*::\s*\w+)*(?:<[^;{}]*?>)?)"
    r"\s*[&*]?\s+(\w+)\s*[=;{(]")
STRUCTURED_BINDING_RE = re.compile(r"\bauto\s*&?\s*\[([^\]]*)\]")


def unordered_container_names(code: str) -> set:
    """Names declared with an unordered container type anywhere in the
    file (variables, members, parameters). File-wide scope is deliberate:
    false sharing of a name across functions only risks a false positive,
    which the fixture suite keeps in check."""
    names = set()
    for m in UNORDERED_DECL_RE.finditer(code):
        close = match_forward(code, m.end() - 1, "<", ">")
        tail = DECL_NAME_AFTER_TEMPLATE_RE.match(code, close)
        if tail and tail.group(1) not in ("const", "return"):
            names.add(tail.group(1))
    return names


def fp_names(code: str) -> set:
    return {m.group(1) for m in FP_DECL_RE.finditer(code)}


def int_names(code: str) -> set:
    return {m.group(1) for m in INT_DECL_RE.finditer(code)}


def iter_for_loops(code: str):
    """Yield (for_offset, header_text, body_text, body_offset)."""
    for m in FOR_RE.finditer(code):
        open_paren = m.end() - 1
        close = match_forward(code, open_paren, "(", ")")
        header = code[open_paren + 1:close - 1]
        k = close
        while k < len(code) and code[k] in " \t\n":
            k += 1
        if k < len(code) and code[k] == "{":
            body_end = match_forward(code, k, "{", "}")
            body = code[k + 1:body_end - 1]
            yield m.start(), header, body, k + 1
        else:
            body_end = code.find(";", k)
            body_end = len(code) if body_end < 0 else body_end
            yield m.start(), header, code[k:body_end], k


def loop_is_unordered(header: str, unordered: set) -> bool:
    parts = split_top_level(header, ":")
    if len(parts) == 2:  # range-for
        expr = parts[1]
        if "unordered_" in expr:
            return True
        return any(re.search(rf"\b{re.escape(n)}\b", expr)
                   for n in unordered)
    # classic for: iterator over an unordered container
    return any(re.search(rf"\b{re.escape(n)}\s*\.\s*(?:c?begin|c?end)\b",
                         header) for n in unordered)


def gather_is_sorted_after(body: str, code_after: str) -> bool:
    """The ordered-reduction exemption: every sink in the loop body is a
    container method call whose receiver is std::sort/stable_sort-ed
    within SORT_WINDOW chars after the loop (the mailbox-merge pattern:
    gather in arbitrary order, sort into a pinned total order, consume).
    Stream/printf sinks disqualify — their order is already emitted."""
    if STREAM_SINK_RE.search(body):
        return False
    receivers = {m.group(1) for m in METHOD_SINK_RE.finditer(body)}
    if not receivers:
        return False
    window = code_after[:SORT_WINDOW]
    return all(
        re.search(rf"\b(?:std\s*::\s*)?(?:stable_)?sort\s*\(\s*"
                  rf"{re.escape(name)}\s*\.\s*c?begin\b", window)
        for name in receivers)


def check_unordered_iteration(src: SourceFile, findings: list) -> None:
    unordered = unordered_container_names(src.code)
    fps = fp_names(src.code)
    ints = int_names(src.code) - fps  # shared name: conservative, flag
    for off, header, body, body_off in iter_for_loops(src.code):
        if not loop_is_unordered(header, unordered):
            continue
        line = src.line_of(off)
        fp_hit = None
        nonint_hit = None
        for m in re.finditer(r"(\w+)\s*\+=", body):
            if m.group(1) in fps:
                fp_hit = m.group(1)
                break
            if m.group(1) not in ints:
                nonint_hit = m.group(1)
        if fp_hit:
            findings.append(Finding(
                src.path, line, "fp-unordered-reduction",
                f"'{fp_hit} +=' accumulates a floating-point value in "
                "hash-table order; the sum depends on the run"))
        sink_hit = SINK_RE.search(body) is not None
        if sink_hit and not fp_hit and not nonint_hit and \
                gather_is_sorted_after(
                    body, src.code[body_off + len(body):]):
            sink_hit = False  # ordered reduction: sorted before use
        if fp_hit or nonint_hit or sink_hit:
            findings.append(Finding(
                src.path, line, "unordered-iter",
                "loop over an unordered container feeds output/"
                "accumulation/container construction; iterate a sorted "
                "copy or an order-stable index instead"))
    # std::accumulate directly over an unordered container's range
    for m in ACCUMULATE_RE.finditer(src.code):
        close = match_forward(src.code, m.end() - 1, "(", ")")
        args = src.code[m.end():close - 1]
        if "unordered_" in args or any(
                re.search(rf"\b{re.escape(n)}\s*\.\s*c?begin\b", args)
                for n in unordered):
            findings.append(Finding(
                src.path, src.line_of(m.start()), "fp-unordered-reduction",
                "std::accumulate over an unordered container's range; "
                "the fold order depends on the run"))


def check_pointer_keys(src: SourceFile, findings: list) -> None:
    for m in ASSOC_DECL_RE.finditer(src.code):
        kind = m.group(1)
        close = match_forward(src.code, m.end() - 1, "<", ">")
        args = split_top_level(src.code[m.end():close - 1])
        if not args:
            continue
        key = args[0].strip()
        if key.endswith("*") and not key.endswith("**"):
            key_short = " ".join(key.split())
            findings.append(Finding(
                src.path, src.line_of(m.start()), "pointer-key",
                f"{kind} keyed on '{key_short}': iteration/comparison "
                "order follows the pointer value, which varies run to "
                "run; key on a stable id instead"))


def check_raw_entropy(src: SourceFile, findings: list) -> None:
    norm = src.path.replace(os.sep, "/")
    if norm.endswith(RAW_ENTROPY_EXEMPT_SUFFIXES):
        return
    for m in RAW_ENTROPY_RE.finditer(src.code):
        token = " ".join(m.group(0).split())
        findings.append(Finding(
            src.path, src.line_of(m.start()), "raw-entropy",
            f"'{token}' reads ambient entropy; results must derive all "
            "randomness from the seeded RNG and all timestamps from "
            "obs::RunManifest"))


def lambda_param_names(code: str, after_capture: int) -> set:
    if after_capture < len(code) and code[after_capture] == "(":
        close = match_forward(code, after_capture, "(", ")")
        params = code[after_capture + 1:close - 1]
        names = set()
        for part in split_top_level(params):
            words = re.findall(r"\w+", part)
            if words:
                names.add(words[-1])
        return names, close
    return set(), after_capture


def check_threadpool_mutation(src: SourceFile, findings: list) -> None:
    code = src.code
    for call in POOL_CALL_RE.finditer(code):
        call_end = match_forward(code, code.find("(", call.start()), "(", ")")
        region = code[call.start():call_end]
        base = call.start()
        for lm in LAMBDA_RE.finditer(region):
            cap_start = base + lm.start()
            cap_end = match_forward(code, cap_start, "[", "]")
            capture = code[cap_start + 1:cap_end - 1]
            # Only lambdas; skip array subscripts: a capture list is
            # followed (after optional params/specifiers) by '{'.
            params, k = lambda_param_names(code, cap_end)
            while k < len(code) and code[k] in " \t\n":
                k += 1
            # skip specifiers like mutable / noexcept / -> T
            spec = re.match(r"(?:mutable|noexcept|constexpr|->\s*[\w:<>,&*\s]+?)*\s*",
                            code[k:cap_end + 400])
            k2 = k + (spec.end() if spec else 0)
            while k2 < len(code) and code[k2] in " \t\n":
                k2 += 1
            if k2 >= len(code) or code[k2] != "{":
                continue
            body_end = match_forward(code, k2, "{", "}")
            body = code[k2 + 1:body_end - 1]

            by_ref_all = bool(re.match(r"\s*&\s*(?:,|$)", capture))
            by_ref = {m.group(1)
                      for m in re.finditer(r"&\s*(\w+)", capture)}
            by_value = {m.group(1) for m in re.finditer(
                r"(?:^|,)\s*(\w+)\s*(?:=[^,\]]*)?(?:,|$)", capture)}

            if LOCK_RE.search(body):
                continue  # a named synchronization object governs the body

            locals_ = {m.group(1)
                       for m in LOCAL_DECL_RE.finditer(body)} | params
            for sb in STRUCTURED_BINDING_RE.finditer(body):
                locals_ |= set(re.findall(r"\w+", sb.group(1)))

            for mut in MUTATION_RE.finditer(body):
                name = mut.group(1)
                if name in locals_ or name in ("this", "return", "break",
                                               "continue", "if", "else",
                                               "while", "for", "case"):
                    continue
                if name in by_value and name not in by_ref:
                    continue
                if not (by_ref_all or name in by_ref):
                    continue
                # Indexed writes (results[i] = ...) are the sanctioned
                # disjoint-slot pattern; the subscript picks a private slot.
                stmt_start = mut.start(1)
                stmt_end = body.find(";", mut.end())
                stmt_end = len(body) if stmt_end < 0 else stmt_end
                stmt = body[stmt_start:stmt_end]
                if re.match(rf"{re.escape(name)}\s*\[", stmt):
                    continue
                if ATOMIC_OP_RE.search(stmt):
                    continue
                findings.append(Finding(
                    src.path, src.line_of(k2 + 1 + mut.start(1)),
                    "threadpool-shared-mutation",
                    f"task lambda mutates captured '{name}' without a "
                    "named synchronization object (mutex/lock/atomic) and "
                    "without a per-task slot index"))


CHECKS = (
    check_unordered_iteration,
    check_pointer_keys,
    check_raw_entropy,
    check_threadpool_mutation,
)


def lint_file(path: str, text: str = None):
    """Returns (findings, errors, warnings) for one file."""
    if text is None:
        with open(path, "r", encoding="utf-8", errors="replace") as fh:
            text = fh.read()
    src = SourceFile(path=path, raw=text)
    sanitize(src)

    findings = []
    for check in CHECKS:
        check(src, findings)

    # A suppression governs its own line when that line carries code, or
    # else the next code-bearing line (comment blocks may run several
    # lines between the annotation and the construct).
    code_lines = src.code.split("\n")

    def target_line(s: Suppression) -> int:
        if s.line <= len(code_lines) and code_lines[s.line - 1].strip():
            return s.line
        for ln in range(s.line + 1, len(code_lines) + 1):
            if code_lines[ln - 1].strip():
                return ln
        return s.line

    kept = []
    for f in findings:
        suppressed = False
        for s in src.suppressions:
            if s.kind == "allow" and s.rule == f.rule and \
                    f.line in (s.line, target_line(s)):
                s.used = True
                suppressed = True
        if not suppressed:
            kept.append(f)

    warnings = [
        f"{path}:{s.line}: warning: allow({s.rule}) matches no finding "
        "(stale suppression?)"
        for s in src.suppressions if s.kind == "allow" and not s.used
    ]
    return kept, src.errors, warnings


def collect_paths(args_paths):
    files = []
    for p in args_paths:
        if os.path.isfile(p):
            files.append(p)
        elif os.path.isdir(p):
            for root, _dirs, names in os.walk(p):
                for name in sorted(names):
                    if name.endswith(CXX_EXTENSIONS):
                        files.append(os.path.join(root, name))
        else:
            print(f"determinism_lint: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return sorted(files)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Static determinism-contract linter (DESIGN.md §15)")
    parser.add_argument("paths", nargs="*", help="files or directories")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress stale-suppression warnings")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in sorted(RULES):
            print(f"{rule}: {RULES[rule]}")
        return 0
    if not args.paths:
        parser.error("no paths given (try: determinism_lint.py src apps bench)")

    all_findings, all_errors, all_warnings = [], [], []
    for path in collect_paths(args.paths):
        findings, errors, warnings = lint_file(path)
        all_findings += findings
        all_errors += errors
        all_warnings += warnings

    for f in all_errors:
        print(f.render())
    for f in all_findings:
        print(f.render())
    if not args.quiet:
        for w in all_warnings:
            print(w, file=sys.stderr)

    if all_errors:
        print(f"determinism_lint: {len(all_errors)} suppression error(s)",
              file=sys.stderr)
        return 2
    if all_findings:
        print(f"determinism_lint: {len(all_findings)} finding(s)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
