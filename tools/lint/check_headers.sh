#!/usr/bin/env bash
# Header self-containment check (DESIGN.md §15): every header under
# include/ and src/ must compile standalone — no reliance on transitive
# includes from whichever .cpp happened to include it first. A header
# that only compiles in a lucky include order is one refactor away from
# breaking the build.
#
# Usage: tools/lint/check_headers.sh [repo-root]
# Exit:  0 all headers self-contained, 1 otherwise.

set -u
root="${1:-$(cd "$(dirname "$0")/../.." && pwd)}"
cxx="${CXX:-g++}"

cd "$root" || exit 2

headers=$(find include src -name '*.hpp' -o -name '*.h' | sort)
[ -n "$headers" ] || { echo "check_headers: no headers found" >&2; exit 2; }

fails=0
checked=0
for header in $headers; do
  checked=$((checked + 1))
  # -x c++ -fsyntax-only: parse the header as its own translation unit
  # with exactly the include paths the library target exports.
  if ! out=$("$cxx" -std=c++20 -x c++ -fsyntax-only \
               -Iinclude -Isrc "$header" 2>&1); then
    fails=$((fails + 1))
    echo "check_headers: $header is not self-contained:"
    echo "$out" | head -15
  fi
done

if [ "$fails" -ne 0 ]; then
  echo "check_headers: $fails of $checked headers failed" >&2
  exit 1
fi
echo "check_headers: $checked headers self-contained"
