// Fixture: a justified allow() silences the finding — file must lint
// clean (exit 0).
#include <ctime>

unsigned wall_clock_tag() {
  // mcs-lint: allow(raw-entropy) report-file naming tag only; the value
  // never reaches simulation state or result output.
  return static_cast<unsigned>(time(nullptr));
}
