// Fixture: allow() without a justification is a fatal suppression error
// (exit 2).
#include <ctime>

unsigned wall_clock_tag() {
  // mcs-lint: allow(raw-entropy)
  return static_cast<unsigned>(time(nullptr));
}
