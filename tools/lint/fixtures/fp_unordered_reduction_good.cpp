// Fixture: fp-unordered-reduction MUST stay silent. Integer folds are
// associative, and FP folds over order-stable containers are fine.
#include <map>
#include <numeric>
#include <string>
#include <unordered_map>
#include <vector>

long long total_count(const std::unordered_map<std::string, long long>& c) {
  long long sum = 0;
  for (const auto& kv : c) {
    sum += kv.second;  // integer addition is associative: order-free
  }
  return sum;
}

double total_sorted(const std::map<std::string, double>& by_key) {
  double acc = 0.0;
  for (const auto& kv : by_key) {
    acc += kv.second;  // key order is deterministic
  }
  return acc;
}

double total_vector(const std::vector<double>& xs) {
  return std::accumulate(xs.begin(), xs.end(), 0.0);
}
