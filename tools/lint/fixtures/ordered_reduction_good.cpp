// Fixture: unordered-iter MUST stay silent on the ordered-reduction
// idiom (the parallel engine's mailbox merge): gather entries from an
// unordered container in arbitrary hash order, sort them into a pinned
// total order, THEN consume. The sort imposes the output order, so hash
// order never reaches a result.
#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

struct Entry {
  std::int64_t key = 0;
  double value = 0.0;
};

double merged_sum(const std::unordered_map<std::int64_t, double>& cells) {
  std::vector<Entry> entries;
  for (const auto& [key, value] : cells) {
    entries.push_back(Entry{key, value});  // gather, order irrelevant
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.key < b.key; });
  double total = 0.0;
  for (const Entry& e : entries) total += e.value;  // pinned fold order
  return total;
}

std::vector<std::string> merged_names(
    const std::unordered_map<std::string, int>& counts) {
  std::vector<std::string> names;
  for (const auto& kv : counts) {
    names.push_back(kv.first);
  }
  std::stable_sort(names.begin(), names.end());
  return names;
}
