// Fixture: unordered-iter MUST fire. Iterating an unordered_map into a
// stream and into a vector — both orders are hash-table order.
#include <iostream>
#include <string>
#include <unordered_map>
#include <vector>

void print_counts(const std::unordered_map<std::string, int>& counts) {
  for (const auto& [name, n] : counts) {
    std::cout << name << " " << n << "\n";  // output in hash order
  }
}

std::vector<int> collect(const std::unordered_map<std::string, int>& counts) {
  std::vector<int> out;
  for (const auto& kv : counts) {
    out.push_back(kv.second);  // container construction in hash order
  }
  return out;
}
