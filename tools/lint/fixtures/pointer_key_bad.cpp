// Fixture: pointer-key MUST fire. Pointer-keyed associative containers
// order (or hash) by address, which ASLR and allocator state change every
// run.
#include <map>
#include <set>
#include <unordered_map>

struct Node {
  int id;
};

std::map<const Node*, int> rank_by_node;          // ordered by address
std::set<Node*> visited;                          // ordered by address
std::unordered_map<Node*, double> weight_by_node; // hashed by address
