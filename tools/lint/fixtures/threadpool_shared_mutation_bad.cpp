// Fixture: threadpool-shared-mutation MUST fire. Tasks submitted to the
// pool mutate by-reference captured state with no mutex, no atomic, and
// no per-task slot.
#include <functional>
#include <vector>

struct ThreadPool {
  void submit(std::function<void()> task);
  void parallel_for(long n, const std::function<void(long)>& body);
};

void racy_counter(ThreadPool& pool) {
  int done = 0;
  std::vector<double> results;
  for (int i = 0; i < 8; ++i) {
    pool.submit([&] {
      done += 1;                 // plain read-modify-write from N workers
      results.push_back(1.0);    // vector growth races
    });
  }
}

void racy_named_capture(ThreadPool& pool) {
  double total = 0.0;
  pool.parallel_for(64, [&total](long i) {
    total = total + static_cast<double>(i);  // racy and order-dependent
  });
}
