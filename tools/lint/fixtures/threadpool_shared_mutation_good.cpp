// Fixture: threadpool-shared-mutation MUST stay silent. The three
// sanctioned shapes: per-task slot writes, atomics, and a named mutex.
#include <atomic>
#include <cstddef>
#include <functional>
#include <mutex>
#include <vector>

struct ThreadPool {
  void submit(std::function<void()> task);
  void parallel_for(long n, const std::function<void(long)>& body);
};

void disjoint_slots(ThreadPool& pool, std::vector<double>& results) {
  pool.parallel_for(static_cast<long>(results.size()), [&](long i) {
    results[static_cast<std::size_t>(i)] = static_cast<double>(i) * 2.0;
  });
}

void atomic_counter(ThreadPool& pool) {
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&done] {
      done.fetch_add(1, std::memory_order_relaxed);
    });
  }
}

void mutex_guarded(ThreadPool& pool, std::vector<double>& results) {
  std::mutex mutex;
  for (int i = 0; i < 8; ++i) {
    pool.submit([&, i] {
      const std::lock_guard<std::mutex> lock(mutex);
      results.push_back(static_cast<double>(i));
    });
  }
}

void local_state_only(ThreadPool& pool) {
  pool.submit([] {
    double acc = 0.0;
    for (int i = 0; i < 4; ++i) acc += static_cast<double>(i);
    (void)acc;
  });
}
