// Fixture: an unknown rule name in allow() is a fatal suppression error
// (exit 2) — suppressions must not rot silently.
#include <ctime>

unsigned wall_clock_tag() {
  // mcs-lint: allow(no-such-rule) this rule name does not exist
  return static_cast<unsigned>(time(nullptr));
}
