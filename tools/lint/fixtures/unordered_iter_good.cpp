// Fixture: unordered-iter MUST stay silent. Lookup-only unordered maps
// (never iterated) and iteration over ordered containers are fine.
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

int lookup(const std::unordered_map<std::string, int>& index,
           const std::string& key) {
  const auto it = index.find(key);  // probe, never iterate
  return it == index.end() ? -1 : it->second;
}

int sum_sorted(const std::map<std::string, int>& sorted_counts) {
  int total = 0;
  for (const auto& [name, n] : sorted_counts) {
    (void)name;
    total += n;  // std::map iterates in key order: deterministic
  }
  return total;
}

int count_only(const std::unordered_map<std::string, int>& counts) {
  int n = 0;
  for (const auto& kv : counts) {
    (void)kv;
    ++n;  // order-independent: no sink, no accumulation of values
  }
  return n;
}

std::vector<int> over_vector(const std::vector<int>& xs) {
  std::vector<int> out;
  for (const int x : xs) out.push_back(x);  // vector order is stable
  return out;
}
