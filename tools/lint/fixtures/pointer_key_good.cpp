// Fixture: pointer-key MUST stay silent. Stable-id keys are fine, and a
// pointer as the mapped VALUE (not the key) is fine too.
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>

struct Node {
  std::int64_t id;
};

std::map<std::int64_t, int> rank_by_id;
std::set<std::string> visited_names;
std::unordered_map<std::string, const Node*> node_by_name;  // value, not key
