// Fixture: fp-unordered-reduction MUST fire. Floating-point addition is
// not associative; folding in hash order yields run-dependent sums.
#include <numeric>
#include <string>
#include <unordered_map>

double total_weight(const std::unordered_map<std::string, double>& w) {
  double sum = 0.0;
  for (const auto& kv : w) {
    sum += kv.second;  // fold in hash order
  }
  return sum;
}

double accumulate_direct(const std::unordered_map<std::string, double>& w) {
  return std::accumulate(w.begin(), w.end(), 0.0,
                         [](double acc, const auto& kv) {
                           return acc + kv.second;
                         });
}
