// Fixture: raw-entropy MUST stay silent. All randomness flows from the
// seeded RNG; time() with an argument (a time_t out-param) is a
// different, still-deterministic-free API shape the rule leaves to
// review; named durations are not clock reads.
#include <chrono>
#include <cstdint>

struct SplitMix64 {
  std::uint64_t state;
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
};

std::uint64_t draw(SplitMix64& rng) { return rng.next(); }

double simulated_now(double base, double dt) {
  return base + dt;  // simulation time is model state, not a clock
}

std::chrono::seconds timeout() { return std::chrono::seconds(30); }
