// Fixture: raw-entropy MUST fire on every ambient-entropy read below.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

unsigned seed_from_clock() {
  return static_cast<unsigned>(time(nullptr));  // wall clock as seed
}

int roll() {
  return std::rand() % 6;  // process-global C RNG
}

unsigned hardware_entropy() {
  std::random_device rd;  // nondeterministic source
  return rd();
}

double stamp() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();  // argless clock read
}
