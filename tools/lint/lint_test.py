#!/usr/bin/env python3
"""Fixture-driven tests for determinism_lint.py (DESIGN.md §15).

Each lint rule must fire on its bad fixture and stay silent on its good
one; suppressions must silence findings only when justified, and unknown
rule names must be rejected fatally. Run directly or via ctest
(determinism_lint_selftest).
"""

import os
import subprocess
import sys
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
LINTER = os.path.join(HERE, "determinism_lint.py")
FIXTURES = os.path.join(HERE, "fixtures")

sys.path.insert(0, HERE)
import determinism_lint  # noqa: E402


def lint(name):
    """Run the linter in-process on one fixture; returns (findings,
    errors, warnings)."""
    return determinism_lint.lint_file(os.path.join(FIXTURES, name))


def rules_fired(findings):
    return {f.rule for f in findings}


class RuleFixtureTests(unittest.TestCase):
    """Every rule: fires on bad, silent on good."""

    PAIRS = {
        "unordered-iter": ("unordered_iter_bad.cpp",
                           "unordered_iter_good.cpp"),
        "pointer-key": ("pointer_key_bad.cpp", "pointer_key_good.cpp"),
        "raw-entropy": ("raw_entropy_bad.cpp", "raw_entropy_good.cpp"),
        "threadpool-shared-mutation": (
            "threadpool_shared_mutation_bad.cpp",
            "threadpool_shared_mutation_good.cpp"),
        "fp-unordered-reduction": ("fp_unordered_reduction_bad.cpp",
                                   "fp_unordered_reduction_good.cpp"),
    }

    def test_rule_catalog_matches_fixture_pairs(self):
        self.assertEqual(set(self.PAIRS), set(determinism_lint.RULES))

    def test_bad_fixtures_fire(self):
        for rule, (bad, _good) in self.PAIRS.items():
            with self.subTest(rule=rule):
                findings, errors, _ = lint(bad)
                self.assertEqual(errors, [])
                self.assertIn(rule, rules_fired(findings),
                              f"{bad} did not trip {rule}")

    def test_good_fixtures_stay_silent(self):
        for rule, (_bad, good) in self.PAIRS.items():
            with self.subTest(rule=rule):
                findings, errors, _ = lint(good)
                self.assertEqual(errors, [])
                self.assertNotIn(rule, rules_fired(findings),
                                 f"{good} false-positived {rule}: "
                                 f"{[f.render() for f in findings]}")

    def test_findings_carry_file_and_line(self):
        findings, _, _ = lint("raw_entropy_bad.cpp")
        self.assertTrue(findings)
        for f in findings:
            self.assertTrue(f.path.endswith("raw_entropy_bad.cpp"))
            self.assertGreater(f.line, 0)
            self.assertIn(f"{f.path}:{f.line}: [{f.rule}]", f.render())

    def test_bad_fixture_line_numbers_point_at_constructs(self):
        findings, _, _ = lint("raw_entropy_bad.cpp")
        with open(os.path.join(FIXTURES, "raw_entropy_bad.cpp")) as fh:
            lines = fh.read().splitlines()
        for f in findings:
            text = lines[f.line - 1]
            self.assertTrue(
                any(tok in text for tok in
                    ("time", "rand", "random_device", "now")),
                f"line {f.line} ('{text}') carries no entropy construct")


class OrderedReductionTests(unittest.TestCase):
    """The gather/sort/consume idiom (the parallel engine's mailbox
    merge) is an ordered reduction: hash order never reaches the output,
    so unordered-iter must stay silent — but only when a sort on every
    sink actually follows."""

    GATHER = (
        "#include <algorithm>\n"
        "#include <unordered_map>\n"
        "#include <vector>\n"
        "std::vector<int> f(const std::unordered_map<int, int>& m) {\n"
        "  std::vector<int> out;\n"
        "  for (const auto& kv : m) {\n"
        "    out.push_back(kv.second);\n"
        "  }\n")

    def test_sorted_gather_fixture_stays_silent(self):
        findings, errors, _ = lint("ordered_reduction_good.cpp")
        self.assertEqual(errors, [])
        self.assertEqual(rules_fired(findings), set(),
                         [f.render() for f in findings])

    def test_gather_without_sort_still_fires(self):
        text = self.GATHER + "  return out;\n}\n"
        findings, _, _ = determinism_lint.lint_file("inline.cpp", text)
        self.assertIn("unordered-iter", rules_fired(findings))

    def test_gather_with_adjacent_sort_is_exempt(self):
        text = (self.GATHER +
                "  std::sort(out.begin(), out.end());\n"
                "  return out;\n}\n")
        findings, _, _ = determinism_lint.lint_file("inline.cpp", text)
        self.assertEqual(rules_fired(findings), set(),
                         [f.render() for f in findings])

    def test_stream_sink_disqualifies_even_with_sort(self):
        text = (
            "#include <algorithm>\n"
            "#include <cstdio>\n"
            "#include <unordered_map>\n"
            "#include <vector>\n"
            "std::vector<int> f(const std::unordered_map<int, int>& m) {\n"
            "  std::vector<int> out;\n"
            "  for (const auto& kv : m) {\n"
            "    out.push_back(kv.second);\n"
            "    printf(\"%d\\n\", kv.second);\n"
            "  }\n"
            "  std::sort(out.begin(), out.end());\n"
            "  return out;\n}\n")
        findings, _, _ = determinism_lint.lint_file("inline.cpp", text)
        self.assertIn("unordered-iter", rules_fired(findings))

    def test_distant_sort_does_not_exempt(self):
        filler = "  volatile int pad = 0; (void)pad;\n" * 80
        text = (self.GATHER + filler +
                "  std::sort(out.begin(), out.end());\n"
                "  return out;\n}\n")
        self.assertGreater(len(filler), determinism_lint.SORT_WINDOW)
        findings, _, _ = determinism_lint.lint_file("inline.cpp", text)
        self.assertIn("unordered-iter", rules_fired(findings))

    def test_fp_reduction_inside_gather_still_fires(self):
        # Sorting afterwards cannot repair a sum folded in hash order.
        text = (
            "#include <algorithm>\n"
            "#include <unordered_map>\n"
            "#include <vector>\n"
            "double f(const std::unordered_map<int, double>& m) {\n"
            "  double total = 0.0;\n"
            "  std::vector<double> out;\n"
            "  for (const auto& kv : m) {\n"
            "    out.push_back(kv.second);\n"
            "    total += kv.second;\n"
            "  }\n"
            "  std::sort(out.begin(), out.end());\n"
            "  return total;\n}\n")
        findings, _, _ = determinism_lint.lint_file("inline.cpp", text)
        self.assertIn("fp-unordered-reduction", rules_fired(findings))
        self.assertIn("unordered-iter", rules_fired(findings))


class SuppressionTests(unittest.TestCase):
    def test_justified_allow_silences(self):
        findings, errors, warnings = lint("suppression_ok.cpp")
        self.assertEqual(findings, [])
        self.assertEqual(errors, [])
        self.assertEqual(warnings, [])  # the allow is used, not stale

    def test_unknown_rule_is_fatal(self):
        _, errors, _ = lint("suppression_unknown_rule.cpp")
        self.assertTrue(errors)
        self.assertIn("no-such-rule", errors[0].render())

    def test_missing_justification_is_fatal(self):
        _, errors, _ = lint("suppression_no_justification.cpp")
        self.assertTrue(errors)
        self.assertIn("without a justification", errors[0].render())

    def test_stale_allow_warns(self):
        text = ("// mcs-lint: allow(raw-entropy) nothing here needs it\n"
                "int x = 1;\n")
        findings, errors, warnings = determinism_lint.lint_file(
            "inline.cpp", text)
        self.assertEqual(findings, [])
        self.assertEqual(errors, [])
        self.assertEqual(len(warnings), 1)
        self.assertIn("stale", warnings[0])

    def test_note_documents_without_finding_requirement(self):
        text = ("// mcs-lint: note(unordered-iter) lookup-only index\n"
                "int x = 1;\n")
        findings, errors, warnings = determinism_lint.lint_file(
            "inline.cpp", text)
        self.assertEqual((findings, errors, warnings), ([], [], []))

    def test_note_with_unknown_rule_is_fatal(self):
        text = "// mcs-lint: note(bogus) whatever\n"
        _, errors, _ = determinism_lint.lint_file("inline.cpp", text)
        self.assertTrue(errors)


class SanitizerTests(unittest.TestCase):
    """The matcher must see code, not comments/strings."""

    def test_ignores_constructs_in_comments_and_strings(self):
        text = (
            '#include <string>\n'
            '// std::rand() in a comment\n'
            '/* random_device in a block comment */\n'
            'std::string s = "time(nullptr) inside a string";\n'
            'const char* r = R"(steady_clock::now() raw string)";\n')
        findings, errors, _ = determinism_lint.lint_file("inline.cpp", text)
        self.assertEqual(findings, [])
        self.assertEqual(errors, [])

    def test_digit_separators_do_not_swallow_code(self):
        text = ("int big = 1'000'000;\n"
                "unsigned t = time(nullptr);\n")
        findings, _, _ = determinism_lint.lint_file("inline.cpp", text)
        self.assertEqual(rules_fired(findings), {"raw-entropy"})

    def test_manifest_exemption(self):
        text = "auto t = std::chrono::steady_clock::now();\n"
        findings, _, _ = determinism_lint.lint_file(
            "src/obs/manifest.cpp", text)
        self.assertEqual(findings, [])
        findings, _, _ = determinism_lint.lint_file(
            "src/sim/engine.cpp", text)
        self.assertEqual(rules_fired(findings), {"raw-entropy"})


class ExitCodeTests(unittest.TestCase):
    """Black-box: the CLI contract CI depends on."""

    def run_linter(self, *args):
        return subprocess.run(
            [sys.executable, LINTER, *args],
            capture_output=True, text=True)

    def test_clean_file_exits_zero(self):
        p = self.run_linter(os.path.join(FIXTURES, "pointer_key_good.cpp"))
        self.assertEqual(p.returncode, 0, p.stdout + p.stderr)

    def test_findings_exit_one(self):
        p = self.run_linter(os.path.join(FIXTURES, "pointer_key_bad.cpp"))
        self.assertEqual(p.returncode, 1, p.stdout + p.stderr)
        self.assertIn("[pointer-key]", p.stdout)

    def test_suppression_error_exits_two(self):
        p = self.run_linter(
            os.path.join(FIXTURES, "suppression_unknown_rule.cpp"))
        self.assertEqual(p.returncode, 2, p.stdout + p.stderr)

    def test_list_rules(self):
        p = self.run_linter("--list-rules")
        self.assertEqual(p.returncode, 0)
        for rule in determinism_lint.RULES:
            self.assertIn(rule, p.stdout)

    def test_missing_path_exits_two(self):
        p = self.run_linter("definitely/not/a/path.cpp")
        self.assertEqual(p.returncode, 2)


if __name__ == "__main__":
    unittest.main(verbosity=2)
