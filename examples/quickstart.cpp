// Quickstart: predict and measure the mean message latency of the paper's
// Org A system (N=1120, C=32, m=8) at one offered load.
//
//   ./quickstart [--lambda=2e-4] [--measured=20000] [--seed=1]
#include <cstdio>

#include <mcs/mcs.hpp>

int main(int argc, char** argv) {
  const mcs::util::Args args(argc, argv);
  const double lambda = args.get_double("lambda", 2e-4);

  // 1. Describe the system: Table 1's Org A, paper-default network
  //    parameters (M=32 flits of 256 bytes, 500 bytes/time-unit links).
  const auto config = mcs::topo::SystemConfig::table1_org_a();
  mcs::model::NetworkParams params;
  std::printf("System: N=%lld nodes, C=%d clusters, m=%d ports\n",
              static_cast<long long>(config.total_nodes()),
              config.cluster_count(), config.m);
  std::printf("Channel times: t_cn=%.3f t_cs=%.3f (time units)\n\n",
              params.t_cn(), params.t_cs());

  // 2. Analytical prediction (Sec. 3): both model variants.
  const mcs::model::PaperModel paper(config, params);
  const mcs::model::RefinedModel refined(config, params);
  const auto p_pred = paper.predict(lambda);
  const auto r_pred = refined.predict(lambda);
  std::printf("Analysis  @ lambda_g=%.2e:\n", lambda);
  std::printf("  paper-literal model : %8.2f %s\n", p_pred.mean_latency,
              p_pred.stable ? "" : "(saturated)");
  std::printf("  refined model       : %8.2f %s\n", r_pred.mean_latency,
              r_pred.stable ? "" : "(saturated)");

  // 3. Simulation (Sec. 4): same assumptions, discrete-event, wormhole.
  mcs::sim::SimConfig sim_cfg;
  sim_cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  sim_cfg.warmup_messages = 2'000;
  sim_cfg.measured_messages = args.get_int("measured", 20'000);
  const mcs::topo::MultiClusterTopology topology(config);
  mcs::sim::Simulator sim(topology, params, lambda, sim_cfg);
  const auto measured = sim.run();
  if (measured.saturated) {
    std::printf("Simulation: saturated (%s)\n",
                measured.saturation_reason.c_str());
    return 0;
  }
  std::printf("Simulation: %8.2f +/- %.2f (95%% CI, %lld messages)\n",
              measured.latency.mean, measured.latency.half_width,
              static_cast<long long>(measured.delivered_measured));
  std::printf("  internal %.2f | external %.2f | source wait %.2f | "
              "conc wait %.2f\n",
              measured.internal_latency.mean, measured.external_latency.mean,
              measured.mean_source_wait, measured.mean_conc_wait);
  return 0;
}
