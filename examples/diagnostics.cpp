// Diagnostics: component-level comparison of the analytical models against
// the simulator at one operating point, plus per-class channel utilization
// (the raw material behind the utilization bench).
//
//   ./diagnostics [--org=a|b] [--lambda=1e-4] [--m-flits=32]
//                 [--flit-bytes=256] [--measured=20000] [--cut-through]
#include <cstdio>

#include <mcs/mcs.hpp>

int main(int argc, char** argv) {
  const mcs::util::Args args(argc, argv);
  const auto config = args.get("org", "a") == "b"
                          ? mcs::topo::SystemConfig::table1_org_b()
                          : mcs::topo::SystemConfig::table1_org_a();
  mcs::model::NetworkParams params;
  params.message_flits = static_cast<int>(args.get_int("m-flits", 32));
  params.flit_bytes = args.get_double("flit-bytes", 256);
  const double lambda = args.get_double("lambda", 1e-4);

  const mcs::model::PaperModel paper(config, params);
  const mcs::model::RefinedModel refined(config, params);
  const auto pp = paper.predict(lambda);
  const auto rp = refined.predict(lambda);

  mcs::sim::SimConfig sim_cfg;
  sim_cfg.warmup_messages = 2'000;
  sim_cfg.measured_messages = args.get_int("measured", 20'000);
  sim_cfg.collect_channel_stats = true;
  if (args.get_flag("cut-through"))
    sim_cfg.relay_mode = mcs::sim::RelayMode::kCutThrough;
  const mcs::topo::MultiClusterTopology topology(config);
  mcs::sim::Simulator sim(topology, params, lambda, sim_cfg);
  const auto sr = sim.run();

  std::printf("lambda_g = %.3e   relay=%s\n", lambda,
              args.get_flag("cut-through") ? "cut-through"
                                           : "store-and-forward");
  mcs::util::TextTable summary(
      {"quantity", "paper model", "refined model", "simulation"});
  auto row = [&](const char* name, double p, double r, double s) {
    summary.add_row({name, mcs::util::TextTable::num(p, 2),
                     mcs::util::TextTable::num(r, 2),
                     mcs::util::TextTable::num(s, 2)});
  };
  row("mean latency", pp.mean_latency, rp.mean_latency, sr.latency.mean);
  // Node-weighted component means across clusters.
  double p_int = 0, r_int = 0, p_ext = 0, r_ext = 0, p_cd = 0, r_cd = 0;
  const double n_total = static_cast<double>(config.total_nodes());
  for (int i = 0; i < config.cluster_count(); ++i) {
    const double w = static_cast<double>(config.cluster_size(i)) / n_total;
    p_int += w * pp.clusters[static_cast<std::size_t>(i)].t_internal;
    r_int += w * rp.clusters[static_cast<std::size_t>(i)].t_internal;
    p_ext += w * pp.clusters[static_cast<std::size_t>(i)].t_external;
    r_ext += w * rp.clusters[static_cast<std::size_t>(i)].t_external;
    p_cd += w * pp.clusters[static_cast<std::size_t>(i)].w_conc_disp;
    r_cd += w * rp.clusters[static_cast<std::size_t>(i)].w_conc_disp;
  }
  row("internal latency", p_int, r_int, sr.internal_latency.mean);
  row("external latency", p_ext, r_ext, sr.external_latency.mean);
  row("conc+disp wait", p_cd, r_cd, sr.mean_conc_wait + sr.mean_disp_wait);
  summary.print();

  std::printf("\nsim: %lld measured (%lld int / %lld ext), saturated=%d %s\n",
              static_cast<long long>(sr.delivered_measured),
              static_cast<long long>(sr.measured_internal),
              static_cast<long long>(sr.measured_external), sr.saturated,
              sr.saturation_reason.c_str());

  mcs::util::TextTable util({"network", "kind", "level", "channels",
                             "mean util", "max util"});
  const char* kind_names[] = {"inject", "eject", "up", "down"};
  for (const auto& c : sr.channel_classes) {
    util.add_row({mcs::sim::to_string(c.net),
                  kind_names[static_cast<int>(c.kind)],
                  std::to_string(c.level), std::to_string(c.channels),
                  mcs::util::TextTable::num(c.mean_utilization, 4),
                  mcs::util::TextTable::num(c.max_utilization, 4)});
  }
  std::printf("\n");
  util.print();
  return 0;
}
