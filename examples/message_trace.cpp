// Message trace: the life of one external message, hop by hop, at zero
// load — the three worm segments through ECN1 (source), ICN2 and ECN1
// (destination), with header and tail timing from the same single-flit
// buffer recurrence the simulator uses.
//
//   ./message_trace [--org=a|b] [--src=0] [--dst=600]
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include <mcs/mcs.hpp>

namespace {

const char* kind_name(mcs::topo::ChannelKind kind) {
  switch (kind) {
    case mcs::topo::ChannelKind::kInjection: return "inject";
    case mcs::topo::ChannelKind::kEjection: return "eject";
    case mcs::topo::ChannelKind::kUp: return "up";
    case mcs::topo::ChannelKind::kDown: return "down";
  }
  return "?";
}

/// Zero-load header/tail times along one worm path (the engine's drain
/// recurrence without contention).
struct SegmentTiming {
  std::vector<double> header_done;  ///< per hop
  std::vector<double> tail_done;    ///< per hop
};

SegmentTiming time_segment(const std::vector<double>& service, int flits,
                           double start) {
  const std::size_t hops = service.size();
  SegmentTiming t;
  t.header_done.resize(hops);
  double now = start;
  std::vector<double> acquire(hops);
  for (std::size_t j = 0; j < hops; ++j) {
    acquire[j] = now;
    now += service[j];
    t.header_done[j] = now;
  }
  // Drain recurrence (see sim/engine.hpp).
  std::vector<double> prev(acquire), cur(hops);
  for (int f = 1; f < flits; ++f) {
    cur[0] = prev[0] + service[0];
    if (hops > 1) cur[0] = std::max(cur[0], prev[1]);
    for (std::size_t j = 1; j + 1 < hops; ++j)
      cur[j] = std::max(cur[j - 1] + service[j - 1], prev[j + 1]);
    if (hops > 1)
      cur[hops - 1] = std::max(cur[hops - 2] + service[hops - 2],
                               prev[hops - 1] + service[hops - 1]);
    std::swap(prev, cur);
  }
  t.tail_done.resize(hops);
  for (std::size_t j = 0; j < hops; ++j)
    t.tail_done[j] = prev[j] + service[j];
  return t;
}

void print_segment(const char* title, const mcs::topo::Network& tree,
                   mcs::topo::EndpointId src, mcs::topo::EndpointId dst,
                   const mcs::model::NetworkParams& params, double& clock) {
  const auto path = tree.route(src, dst);
  std::vector<double> service;
  for (const auto c : path)
    service.push_back(mcs::topo::is_node_link(tree.channel(c).kind)
                          ? params.t_cn()
                          : params.t_cs());
  const SegmentTiming timing =
      time_segment(service, params.message_flits, clock);

  std::printf("\n%s (endpoint %d -> %d, %zu channels)\n", title, src, dst,
              path.size());
  mcs::util::TextTable table(
      {"hop", "kind", "level", "via switch", "header done", "tail done"});
  for (std::size_t j = 0; j < path.size(); ++j) {
    const auto& ch = tree.channel(path[j]);
    const mcs::topo::SwitchId sw =
        ch.dst_switch >= 0 ? ch.dst_switch : ch.src_switch;
    table.add_row({std::to_string(j), kind_name(ch.kind),
                   std::to_string(ch.level),
                   "L" + std::to_string(tree.switch_level(sw)) + "#" +
                       std::to_string(sw),
                   mcs::util::TextTable::num(timing.header_done[j], 3),
                   mcs::util::TextTable::num(timing.tail_done[j], 3)});
  }
  table.print();
  clock = timing.tail_done.back();
}

}  // namespace

int main(int argc, char** argv) {
  const mcs::util::Args args(argc, argv);
  const auto config = args.get("org", "a") == "b"
                          ? mcs::topo::SystemConfig::table1_org_b()
                          : mcs::topo::SystemConfig::table1_org_a();
  const mcs::topo::MultiClusterTopology topo(config);
  const mcs::model::NetworkParams params;

  const std::int64_t src = args.get_int("src", 0);
  const std::int64_t dst =
      args.get_int("dst", topo.total_nodes() - 1);
  const auto [sc, sl] = topo.locate(src);
  const auto [dc, dl] = topo.locate(dst);

  std::printf("Tracing message: node %lld (cluster %d) -> node %lld "
              "(cluster %d), M=%d flits\n",
              static_cast<long long>(src), sc,
              static_cast<long long>(dst), dc, params.message_flits);

  double clock = 0.0;
  if (sc == dc) {
    print_segment("ICN1 (intra-cluster)", topo.icn1(sc), sl, dl, params,
                  clock);
  } else {
    print_segment("Leg 1: source ECN1 to concentrator", topo.ecn1(sc), sl,
                  topo.concentrator_endpoint(sc), params, clock);
    print_segment("Leg 2: ICN2 between concentrators", topo.icn2(),
                  topo.icn2_endpoint(sc), topo.icn2_endpoint(dc), params,
                  clock);
    print_segment("Leg 3: destination ECN1 to node", topo.ecn1(dc),
                  topo.concentrator_endpoint(dc), dl, params, clock);
  }
  std::printf("\nzero-load end-to-end latency: %.3f time units\n", clock);
  return 0;
}
