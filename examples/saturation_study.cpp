// Saturation study: what saturates first, and how the sustainable load
// scales with the message length. Uses the closed-form bottleneck
// analyzer (model/bottleneck.hpp) and the model-based knee search.
//
//   ./saturation_study [--org=a|b] [--lambda=...]
#include <cstdio>

#include <mcs/mcs.hpp>

int main(int argc, char** argv) {
  const mcs::util::Args args(argc, argv);
  const auto config = args.get("org", "a") == "b"
                          ? mcs::topo::SystemConfig::table1_org_b()
                          : mcs::topo::SystemConfig::table1_org_a();
  mcs::model::NetworkParams params;

  const mcs::model::RefinedModel refined(config, params);
  const double knee = mcs::model::find_saturation(refined).lambda_sat;
  const double lambda = args.get_double("lambda", knee);

  std::printf("=== Bottleneck ranking at lambda_g = %.3e (org %s) ===\n",
              lambda, args.get("org", "a").c_str());
  const auto loads = mcs::model::analyze_bottlenecks(config, params, lambda);
  mcs::util::TextTable table({"network", "kind", "lvl", "channels",
                              "worst util", "mean util",
                              "hottest channel"});
  const char* kind_names[] = {"inject", "eject", "up", "down"};
  int rows = 0;
  for (const auto& load : loads) {
    if (++rows > 10) break;  // top ten
    table.add_row({mcs::model::to_string(load.net),
                   kind_names[static_cast<int>(load.kind)],
                   std::to_string(load.level),
                   std::to_string(load.channels),
                   mcs::util::TextTable::num(load.worst_utilization, 3),
                   mcs::util::TextTable::num(load.mean_utilization, 4),
                   load.hottest});
  }
  table.print();

  std::printf("\n=== Sustainable load vs message length ===\n");
  mcs::util::TextTable sweep({"M (flits)", "flow-model bound",
                              "refined-model knee", "bound x M"});
  for (const int m_flits : {8, 16, 32, 64, 128}) {
    mcs::model::NetworkParams p = params;
    p.message_flits = m_flits;
    const double bound =
        mcs::model::load_at_worst_utilization(config, p, 1.0);
    const mcs::model::RefinedModel model(config, p);
    const double model_knee = mcs::model::find_saturation(model).lambda_sat;
    sweep.add_row({std::to_string(m_flits),
                   mcs::util::TextTable::sci(bound, 3),
                   mcs::util::TextTable::sci(model_knee, 3),
                   mcs::util::TextTable::sci(bound * m_flits, 3)});
  }
  sweep.print();
  std::printf(
      "\nReading: the product (bound x M) is constant — the sustainable\n"
      "load is inversely proportional to the message length, because the\n"
      "binding constraint is channel occupancy M*t_cs on the hottest\n"
      "d-mod-k funnel. The queueing knee sits below the pure flow bound\n"
      "(waits explode before utilization reaches 1).\n");
  return 0;
}
