// Design-space exploration — the use case the paper's conclusion names:
// "a practical evaluation tool that can help system designers explore the
// design space and examine various design parameters."
//
// Given a target machine size, enumerate the realizable homogeneous
// multi-cluster organizations (switch arity x cluster height x cluster
// count), and rank them by sustainable load, low-load latency and switch
// hardware cost.
//
//   ./design_space [--nodes=512]
#include <cstdio>
#include <vector>

#include <mcs/mcs.hpp>

int main(int argc, char** argv) {
  const mcs::util::Args args(argc, argv);
  const std::int64_t target = args.get_int("nodes", 512);
  mcs::model::NetworkParams params;  // paper defaults

  struct Candidate {
    mcs::topo::SystemConfig config;
    int height;
    std::int64_t switches;
    double knee;
    double zero_load;
  };
  std::vector<Candidate> candidates;

  for (const int m : {4, 8, 16}) {
    for (int h = 1; h <= 6; ++h) {
      const mcs::topo::TreeShape shape{m, h};
      if (shape.node_count() > target) break;
      if (target % shape.node_count() != 0) continue;
      const auto c = static_cast<int>(target / shape.node_count());
      if (c < 2 || c > 512) continue;
      Candidate cand;
      cand.config = mcs::topo::SystemConfig::homogeneous(m, h, c);
      cand.height = h;
      // Hardware cost: ICN1 + ECN1 switches per cluster plus the ICN2.
      cand.switches =
          2 * c * shape.switch_count() +
          mcs::topo::TreeShape{m, cand.config.icn2_height()}.switch_count();
      const mcs::model::RefinedModel model(cand.config, params);
      cand.knee = mcs::model::find_saturation(model).lambda_sat;
      cand.zero_load = model.predict(1e-9).mean_latency;
      candidates.push_back(std::move(cand));
    }
  }

  if (candidates.empty()) {
    std::printf("no homogeneous organization divides N=%lld evenly; try a "
                "power-of-two size\n",
                static_cast<long long>(target));
    return 0;
  }

  std::printf("=== Design space for N = %lld nodes (M=%d flits, L_m=%.0f "
              "bytes) ===\n",
              static_cast<long long>(target), params.message_flits,
              params.flit_bytes);
  mcs::util::TextTable table({"m", "cluster", "clusters", "switches",
                              "zero-load latency", "knee lambda*",
                              "knee x zero-load"});
  for (const Candidate& c : candidates) {
    table.add_row(
        {std::to_string(c.config.m),
         std::to_string(mcs::topo::TreeShape{c.config.m, c.height}
                            .node_count()) +
             " nodes",
         std::to_string(c.config.cluster_count()),
         std::to_string(c.switches),
         mcs::util::TextTable::num(c.zero_load, 1),
         mcs::util::TextTable::sci(c.knee, 2),
         // A crude figure of merit: throughput headroom per unit latency.
         mcs::util::TextTable::sci(c.knee / c.zero_load, 2)});
  }
  table.print();
  std::printf(
      "\nReading: larger clusters keep more traffic internal (higher knee\n"
      "per concentrator) but cost more switches per cluster; wider\n"
      "switches (m) flatten the trees, cutting both latency and cost. The\n"
      "last column is a throughput-per-latency figure of merit.\n");
  return 0;
}
