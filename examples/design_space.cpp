// Design-space exploration — the use case the paper's conclusion names:
// "a practical evaluation tool that can help system designers explore the
// design space and examine various design parameters."
//
// Given a target machine size, enumerate the realizable homogeneous
// multi-cluster organizations (switch arity x cluster height x cluster
// count), evaluate them all in one parallel SweepRunner pass (zero-load
// latency + saturation knee per organization), and rank them by
// sustainable load, low-load latency and switch hardware cost.
//
//   ./design_space [--nodes=512] [--threads=N]
#include <cstdio>
#include <string>
#include <vector>

#include <mcs/mcs.hpp>

int main(int argc, char** argv) {
  const mcs::util::Args args(argc, argv);
  const std::int64_t target = args.get_int("nodes", 512);

  // Enumerate realizable homogeneous organizations as systems of one
  // scenario; the SweepRunner evaluates every candidate concurrently.
  mcs::exp::ScenarioSpec spec;
  spec.name = "design_space";
  spec.loads = {1e-9};  // zero-load probe point
  spec.run_sim = false;
  spec.run_paper_model = false;
  spec.run_refined_model = true;
  spec.find_knee = true;

  struct Candidate {
    int height;
    std::int64_t switches;
  };
  std::vector<Candidate> candidates;

  for (const int m : {4, 8, 16}) {
    for (int h = 1; h <= 6; ++h) {
      const mcs::topo::TreeShape shape{m, h};
      if (shape.node_count() > target) break;
      if (target % shape.node_count() != 0) continue;
      const auto c = static_cast<int>(target / shape.node_count());
      if (c < 2 || c > 512) continue;
      const auto config = mcs::topo::SystemConfig::homogeneous(m, h, c);
      // Hardware cost: ICN1 + ECN1 switches per cluster plus the ICN2.
      const std::int64_t switches =
          2 * c * shape.switch_count() +
          mcs::topo::TreeShape{m, config.icn2_height()}.switch_count();
      spec.systems.push_back(
          {"m" + std::to_string(m) + "_h" + std::to_string(h), config});
      candidates.push_back({h, switches});
    }
  }

  if (candidates.empty()) {
    std::printf("no homogeneous organization divides N=%lld evenly; try a "
                "power-of-two size\n",
                static_cast<long long>(target));
    return 0;
  }

  std::printf("=== Design space for N = %lld nodes (M=%d flits, L_m=%.0f "
              "bytes) ===\n",
              static_cast<long long>(target),
              spec.base_params.message_flits, spec.base_params.flit_bytes);

  const mcs::exp::SweepRunner runner(spec);
  mcs::exp::SweepRunOptions run_options;
  run_options.threads = static_cast<int>(args.get_int("threads", 0));
  const mcs::exp::SweepResult result = runner.run(run_options);

  mcs::util::TextTable table({"m", "cluster", "clusters", "switches",
                              "zero-load latency", "knee lambda*",
                              "knee x zero-load"});
  for (std::size_t i = 0; i < result.rows.size(); ++i) {
    const mcs::exp::SweepRow& row = result.rows[i];
    const Candidate& cand = candidates[i];
    const mcs::topo::SystemConfig& config =
        spec.systems[static_cast<std::size_t>(row.system_idx)].config;
    table.add_row(
        {std::to_string(config.m),
         std::to_string(
             mcs::topo::TreeShape{config.m, cand.height}.node_count()) +
             " nodes",
         std::to_string(config.cluster_count()),
         std::to_string(cand.switches),
         mcs::util::TextTable::num(row.refined_latency, 1),
         mcs::util::TextTable::sci(row.knee_lambda, 2),
         // A crude figure of merit: throughput headroom per unit latency.
         mcs::util::TextTable::sci(row.knee_lambda / row.refined_latency,
                                   2)});
  }
  table.print();
  std::printf(
      "\nReading: larger clusters keep more traffic internal (higher knee\n"
      "per concentrator) but cost more switches per cluster; wider\n"
      "switches (m) flatten the trees, cutting both latency and cost. The\n"
      "last column is a throughput-per-latency figure of merit.\n");
  return 0;
}
