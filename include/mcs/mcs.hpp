// Umbrella header for the mcs library: analytical modeling and simulation
// of interconnection networks in heterogeneous multi-cluster systems
// (reproduction of Javadi, Abawajy, Akbari & Nahavandi, ICPP-W 2006).
//
// Quick start:
//
//   #include <mcs/mcs.hpp>
//
//   auto cfg = mcs::topo::SystemConfig::table1_org_a();
//   mcs::model::NetworkParams params;         // paper defaults
//   mcs::model::PaperModel model(cfg, params);
//   auto prediction = model.predict(/*lambda_g=*/2e-4);
//
//   mcs::topo::MultiClusterTopology topo(cfg);
//   mcs::sim::Simulator sim(topo, params, 2e-4, mcs::sim::SimConfig{});
//   auto measured = sim.run();
#pragma once

#include "exp/checkpoint.hpp"
#include "exp/explain.hpp"
#include "exp/result_cache.hpp"
#include "exp/saturation_search.hpp"
#include "exp/scenario.hpp"
#include "exp/scenario_cli.hpp"
#include "exp/sweep.hpp"
#include "exp/sweep_io.hpp"
#include "exp/thread_pool.hpp"
#include "model/bottleneck.hpp"
#include "model/breakdown.hpp"
#include "model/graph_load.hpp"
#include "model/icn2_funnel.hpp"
#include "model/latency.hpp"
#include "model/mg1.hpp"
#include "model/paper_model.hpp"
#include "model/params.hpp"
#include "model/refined_model.hpp"
#include "model/saturation.hpp"
#include "model/service_recursion.hpp"
#include "obs/anatomy.hpp"
#include "obs/manifest.hpp"
#include "obs/probe.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "sim/event_queue.hpp"
#include "sim/metrics.hpp"
#include "sim/parallel_sim.hpp"
#include "sim/replication.hpp"
#include "sim/simulator.hpp"
#include "sim/traffic.hpp"
#include "topology/dragonfly.hpp"
#include "topology/fat_tree.hpp"
#include "topology/graph.hpp"
#include "topology/multi_cluster.hpp"
#include "topology/network.hpp"
#include "topology/random_regular.hpp"
#include "topology/routing.hpp"
#include "topology/torus.hpp"
#include "topology/tree_math.hpp"
#include "util/atomic_file.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/histogram.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
